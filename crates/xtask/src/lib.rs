//! Source-level audit of the workspace's `unsafe` and concurrency
//! hygiene, run as `cargo xtask audit` (see `.cargo/config.toml`).
//!
//! Five rules, all enforced over the checked-in sources (no
//! compilation, so the lint also covers cfg'd-out code):
//!
//! 1. **SAFETY comments** — every line containing the `unsafe` keyword
//!    (block, fn, or impl) must carry a `// SAFETY:` comment, either on
//!    the same line or in the contiguous comment block above it.
//! 2. **Unsafe ledger** — every documented unsafe site must be
//!    registered in `UNSAFE_LEDGER.md` as `(file, context hash)`, and
//!    every ledger row must still correspond to a live site.
//!    `cargo xtask audit --bless` regenerates the ledger; a stale row
//!    or an unregistered site fails the plain check. The context hash
//!    covers the SAFETY comment and the unsafe line itself, so editing
//!    either forces a deliberate re-bless.
//! 3. **Thread-spawn ban** — `thread::spawn` / `thread::Builder` are
//!    confined to the communication layer (`crates/comm/src`), the
//!    compute pool (`crates/tensor/src/pool.rs`), the serving worker
//!    pool (`crates/serve/src/worker.rs`), and the vendored loom
//!    scheduler. Test code (`tests/`, `benches/`, `#[cfg(test)]`
//!    modules) is exempt.
//! 4. **Determinism ban** — `HashMap`/`HashSet` are forbidden in the
//!    hot kernels (aggregate, matmul, boundary exchange, the per-query
//!    serving path): their iteration order is randomized per process,
//!    which would make per-rank results irreproducible — and in the
//!    serving path a hashed lookup per boundary row is also the exact
//!    cost the dense `slot_of` index exists to avoid.
//! 5. **FMA ban** — `mul_add` and fused multiply-add intrinsics
//!    (`fmadd`/`fmsub`/`vfma`) are forbidden in the kernel files: a
//!    fused op rounds once where mul-then-add rounds twice, so any FMA
//!    breaks the bitwise scalar≡SIMD determinism contract.
//!
//! The scanner is line-oriented with a small string/char/comment
//! stripper — deliberately simple, auditable, and dependency-free
//! rather than a full parser. The seeded fixtures under `fixtures/`
//! plus `tests/selftest.rs` pin down exactly what it catches.

// The auditor itself must not need auditing.
#![forbid(unsafe_code)]

pub mod analyze;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Which rule a [`Violation`] comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without a `// SAFETY:` comment.
    MissingSafety,
    /// Documented unsafe site absent from the ledger.
    LedgerMissing,
    /// Ledger row with no matching site (or wrong count).
    LedgerStale,
    /// `thread::spawn`/`thread::Builder` outside the allowlist.
    ForbiddenSpawn,
    /// `HashMap`/`HashSet` in a determinism-critical kernel file.
    HashCollection,
    /// `mul_add`/FMA intrinsic in a determinism-critical kernel file.
    FmaInKernel,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::MissingSafety => "missing-safety-comment",
            Rule::LedgerMissing => "unsafe-not-in-ledger",
            Rule::LedgerStale => "stale-ledger-entry",
            Rule::ForbiddenSpawn => "forbidden-thread-spawn",
            Rule::HashCollection => "hash-collection-in-kernel",
            Rule::FmaInKernel => "fma-in-kernel",
        };
        f.write_str(s)
    }
}

/// One audit finding, pointing at `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Violation {
    /// Bridges an audit violation into the shared diagnostics type so
    /// `audit` and `analyze` print (and emit `--json`) identically.
    pub fn to_finding(&self) -> analyze::diag::Finding {
        analyze::diag::Finding {
            rule: "AUDIT".into(),
            name: self.rule.to_string(),
            file: self.file.clone(),
            line: self.line,
            message: self.message.clone(),
            note: None,
            key: 0,
            blessable: false,
        }
    }
}

/// A documented unsafe site found in the sources.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the first occurrence of this context.
    pub line: usize,
    /// FNV-1a 64 over the SAFETY comment block + the unsafe line.
    pub hash: u64,
    /// How many identical contexts appear in this file.
    pub count: usize,
    /// First line of the SAFETY justification.
    pub invariant: String,
}

/// What to audit and where the boundaries are.
pub struct AuditConfig {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Ledger location (normally `<root>/UNSAFE_LEDGER.md`).
    pub ledger_path: PathBuf,
    /// Relative path prefixes where spawning threads is allowed.
    pub spawn_allow: Vec<String>,
    /// Relative paths of kernel files banned from hash collections.
    pub kernel_files: Vec<String>,
    /// Relative path prefixes excluded from the walk entirely.
    pub skip: Vec<String>,
}

impl AuditConfig {
    /// The real workspace policy.
    pub fn for_repo(root: &Path) -> Self {
        AuditConfig {
            root: root.to_path_buf(),
            ledger_path: root.join("UNSAFE_LEDGER.md"),
            spawn_allow: vec![
                // The rank transport owns the per-partition threads.
                "crates/comm/src".into(),
                // The compute pool owns the worker threads.
                "crates/tensor/src/pool.rs".into(),
                // The cooperative scheduler owns the rank-task workers.
                "crates/runtime/src".into(),
                // The serving engine's per-shard workers.
                "crates/serve/src/worker.rs".into(),
                // The model checker's cooperative scheduler.
                "vendor/loom".into(),
            ],
            kernel_files: vec![
                "crates/nn/src/aggregate.rs".into(),
                "crates/nn/src/activation.rs".into(),
                "crates/nn/src/optim.rs".into(),
                "crates/tensor/src/matrix.rs".into(),
                "crates/tensor/src/simd.rs".into(),
                // The wire codecs: quantize/dequantize must stay
                // bitwise identical across backends, so FMA and hash
                // collections are banned like any other kernel.
                "crates/tensor/src/simd/codec.rs".into(),
                "crates/core/src/exchange.rs".into(),
                // The per-query serving hot path: closure expansion,
                // feature gather, and the boundary cache.
                "crates/serve/src/shard.rs".into(),
                "crates/serve/src/cache.rs".into(),
            ],
            skip: vec![
                "target".into(),
                ".git".into(),
                // Seeded lint-violation fixtures must not fail the
                // real audit; tests/selftest.rs walks them explicitly.
                "crates/xtask/fixtures".into(),
            ],
        }
    }
}

/// Everything one audit pass produces.
pub struct AuditReport {
    pub violations: Vec<Violation>,
    pub sites: Vec<UnsafeSite>,
    pub files_scanned: usize,
}

/// FNV-1a 64-bit, the ledger's context hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Strips line comments and the contents of string/char literals —
/// including raw strings (`r"…"`, `r#"…"#`, `br"…"`) — so keyword
/// scans don't fire inside text. Line-local by design: the workspace
/// style keeps multi-line string literals out of kernel and unsafe
/// code, and the fixtures pin the cases that matter.
fn strip_code(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                    prev = Some('"');
                }
                _ => {}
            }
            continue;
        }
        // Raw (and raw-byte) string literals: no escapes, delimited by
        // `"` plus the opening `#` count. `r` must start the literal
        // token (not be the tail of an identifier like `var`).
        let word_boundary = !prev.is_some_and(|p| p.is_ascii_alphanumeric() || p == '_');
        if (c == 'r' || c == 'b') && word_boundary {
            let mut look = chars.clone();
            let mut prefix = String::new();
            if c == 'b' {
                match look.next() {
                    Some('r') => prefix.push('r'),
                    _ => {
                        prev = Some(c);
                        out.push(c);
                        continue;
                    }
                }
            }
            let mut hashes = 0usize;
            let mut next = look.next();
            while next == Some('#') {
                hashes += 1;
                next = look.next();
            }
            if next == Some('"') {
                // Consume the prefix we peeked past, then skip to the
                // closing quote + hash run (or end of line: the
                // stripper stays line-local, so an unterminated raw
                // string elides the rest of the line).
                for _ in 0..prefix.len() + hashes + 1 {
                    chars.next();
                }
                out.push('"');
                let closer: String = std::iter::once('"')
                    .chain("#".repeat(hashes).chars())
                    .collect();
                let rest: String = chars.clone().collect();
                match rest.find(&closer) {
                    Some(pos) => {
                        for _ in 0..pos + closer.chars().count() {
                            chars.next();
                        }
                        out.push('"');
                    }
                    None => while chars.next().is_some() {},
                }
                prev = Some('"');
                continue;
            }
            prev = Some(c);
            out.push(c);
            continue;
        }
        prev = Some(c);
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            '\'' => {
                // Distinguish char literals from lifetimes: consume
                // 'x' / '\x' forms, keep lifetimes as-is.
                let mut look = chars.clone();
                match look.next() {
                    Some('\\') => {
                        chars.next();
                        chars.next();
                        chars.next();
                    }
                    Some(_) if look.next() == Some('\'') => {
                        chars.next();
                        chars.next();
                    }
                    _ => out.push('\''),
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// Whole-word search (`unsafe` must not match `unsafe_code`).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let i = start + pos;
        let before_ok = i == 0 || {
            let b = bytes[i - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let j = i + word.len();
        let after_ok = j >= bytes.len() || {
            let b = bytes[j];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = i + word.len();
    }
    false
}

/// Marks the line ranges covered by `#[cfg(test)] mod … { … }`.
fn test_regions(lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Skip further attributes/blank lines down to the item.
        let mut j = i + 1;
        while j < lines.len() {
            let t = lines[j].trim();
            if t.starts_with("#[") || t.is_empty() {
                j += 1;
            } else {
                break;
            }
        }
        if j >= lines.len() || !has_word(&strip_code(lines[j]), "mod") {
            i += 1;
            continue;
        }
        // Brace-balance from the mod line to its closing brace.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut k = j;
        while k < lines.len() {
            for c in strip_code(lines[k]).chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            in_test[k] = true;
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take(k.min(lines.len())).skip(i) {
            *flag = true;
        }
        i = k + 1;
    }
    in_test
}

/// Finds the contiguous `//` comment block that documents line `idx`,
/// skipping over sibling unsafe lines (stacked `unsafe impl`s),
/// attributes, and statement-opening lines that merely wrap the
/// expression (`… =` / `… (`).
fn comment_block_above(lines: &[&str], idx: usize) -> Vec<String> {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim();
        if t.starts_with("//") {
            let mut top = j;
            while top > 0 && lines[top - 1].trim().starts_with("//") {
                top -= 1;
            }
            return lines[top..=j]
                .iter()
                .map(|l| l.trim().to_string())
                .collect();
        }
        let code = strip_code(lines[j]);
        let code = code.trim_end();
        let skip = has_word(code, "unsafe")
            || t.starts_with("#[")
            || t.starts_with("#![")
            || code.ends_with('=')
            || code.ends_with('(');
        if !skip {
            break;
        }
    }
    Vec::new()
}

/// Extracts the invariant summary: the `SAFETY:` line's remainder plus
/// following comment lines, flattened to one line.
fn invariant_summary(block: &[String], same_line: Option<&str>) -> String {
    let from_block = block
        .iter()
        .position(|l| l.starts_with("// SAFETY:"))
        .map(|p| {
            block[p..]
                .iter()
                .map(|l| {
                    l.trim_start_matches("// SAFETY:")
                        .trim_start_matches("//")
                        .trim()
                })
                .collect::<Vec<_>>()
                .join(" ")
        });
    let text = from_block
        .or_else(|| same_line.map(str::to_string))
        .unwrap_or_default();
    let text = text.trim().replace('|', "/");
    let mut out: String = text.chars().take(96).collect();
    if out.len() < text.len() {
        out.push('…');
    }
    out
}

struct FileScan {
    violations: Vec<Violation>,
    /// (hash -> site) for this file.
    sites: BTreeMap<u64, UnsafeSite>,
}

fn scan_file(cfg: &AuditConfig, rel: &str, content: &str) -> FileScan {
    let lines: Vec<&str> = content.lines().collect();
    let in_test = test_regions(&lines);
    let path_is_test = rel.contains("/tests/") || rel.contains("/benches/");
    let spawn_allowed = cfg.spawn_allow.iter().any(|p| rel.starts_with(p.as_str()));
    let is_kernel = cfg.kernel_files.iter().any(|k| rel == k);

    let mut violations = Vec::new();
    let mut sites: BTreeMap<u64, UnsafeSite> = BTreeMap::new();

    for (i, raw) in lines.iter().enumerate() {
        let code = strip_code(raw);
        let lineno = i + 1;

        if has_word(&code, "unsafe") {
            let block = comment_block_above(&lines, i);
            let same_line = raw
                .find("// SAFETY:")
                .map(|p| raw[p + "// SAFETY:".len()..].trim());
            let documented =
                block.iter().any(|l| l.starts_with("// SAFETY:")) || same_line.is_some();
            if !documented {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: Rule::MissingSafety,
                    message: format!("`unsafe` without a `// SAFETY:` comment: `{}`", raw.trim()),
                });
            } else {
                let mut ctx = block.join("\n");
                ctx.push('\n');
                ctx.push_str(raw.trim());
                let hash = fnv1a64(ctx.as_bytes());
                let entry = sites.entry(hash).or_insert_with(|| UnsafeSite {
                    file: rel.to_string(),
                    line: lineno,
                    hash,
                    count: 0,
                    invariant: invariant_summary(&block, same_line),
                });
                entry.count += 1;
            }
        }

        let spawns = has_word(&code, "thread::spawn") || has_word(&code, "thread::Builder");
        if spawns && !spawn_allowed && !path_is_test && !in_test[i] {
            violations.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: Rule::ForbiddenSpawn,
                message: "thread spawning is confined to bns-comm, bns-tensor::pool and \
                          vendor/loom; use the shared pool or the rank transport"
                    .to_string(),
            });
        }

        if is_kernel && (has_word(&code, "HashMap") || has_word(&code, "HashSet")) {
            violations.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: Rule::HashCollection,
                message: "hash collections have randomized iteration order; kernels must \
                          stay deterministic (use Vec/BTreeMap or index arrays)"
                    .to_string(),
            });
        }

        // `mul_add` word-matches (`_` counts as a word character); the
        // intrinsic families need substring search because their names
        // embed the pattern (`_mm256_fmadd_ps`, `vfmaq_f32`, …).
        let fma = has_word(&code, "mul_add")
            || ["fmadd", "fmsub", "vfma"].iter().any(|p| code.contains(p));
        if is_kernel && fma {
            violations.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: Rule::FmaInKernel,
                message: "fused multiply-add rounds once where mul+add rounds twice, so it \
                          breaks the bitwise scalar/SIMD determinism contract; use separate \
                          mul and add"
                    .to_string(),
            });
        }
    }

    FileScan { violations, sites }
}

/// Recursively collects `.rs` files under `root`, honoring the `skip`
/// prefixes, sorted for deterministic reports. Shared by `audit` and
/// `analyze` so the two passes always agree on what the workspace is.
pub fn walk_rust_files(root: &Path, skip: &[String]) -> std::io::Result<Vec<PathBuf>> {
    fn rec(
        dir: &Path,
        root: &Path,
        skip: &[String],
        out: &mut Vec<PathBuf>,
    ) -> std::io::Result<()> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            let rel = rel_path(root, &p);
            if skip
                .iter()
                .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
            {
                continue;
            }
            if p.is_dir() {
                rec(&p, root, skip, out)?;
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    rec(root, root, skip, &mut out)?;
    Ok(out)
}

pub fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the full audit (rules 1, 3, 4 plus the ledger cross-check).
pub fn audit(cfg: &AuditConfig) -> std::io::Result<AuditReport> {
    let files = walk_rust_files(&cfg.root, &cfg.skip)?;
    let mut violations = Vec::new();
    let mut sites: Vec<UnsafeSite> = Vec::new();
    for f in &files {
        let content = std::fs::read_to_string(f)?;
        let rel = rel_path(&cfg.root, f);
        let scan = scan_file(cfg, &rel, &content);
        violations.extend(scan.violations);
        sites.extend(scan.sites.into_values());
    }
    sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let ledger = match std::fs::read_to_string(&cfg.ledger_path) {
        Ok(s) => parse_ledger(&s),
        Err(_) => BTreeMap::new(),
    };
    violations.extend(check_ledger(cfg, &sites, &ledger));

    Ok(AuditReport {
        violations,
        sites,
        files_scanned: files.len(),
    })
}

/// `(file, hash) -> count` as recorded in UNSAFE_LEDGER.md.
type Ledger = BTreeMap<(String, u64), usize>;

fn parse_ledger(text: &str) -> Ledger {
    let mut out = Ledger::new();
    for line in text.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 4 || cells[0] == "File" || cells[0].starts_with("---") {
            continue;
        }
        let file = cells[0].trim_matches('`').to_string();
        let Some(hash) = cells[1]
            .trim_matches('`')
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
        else {
            continue;
        };
        let count: usize = cells[2].parse().unwrap_or(1);
        *out.entry((file, hash)).or_insert(0) += count;
    }
    out
}

fn check_ledger(cfg: &AuditConfig, sites: &[UnsafeSite], ledger: &Ledger) -> Vec<Violation> {
    let mut v = Vec::new();
    let ledger_name = rel_path(&cfg.root, &cfg.ledger_path);
    let mut seen = Ledger::new();
    for s in sites {
        *seen.entry((s.file.clone(), s.hash)).or_insert(0) += s.count;
    }
    for s in sites {
        let key = (s.file.clone(), s.hash);
        match ledger.get(&key) {
            None => v.push(Violation {
                file: s.file.clone(),
                line: s.line,
                rule: Rule::LedgerMissing,
                message: format!(
                    "unsafe site 0x{:016x} is not registered in {ledger_name}; \
                     review it and run `cargo xtask audit --bless`",
                    s.hash
                ),
            }),
            Some(&n) if n != s.count => v.push(Violation {
                file: s.file.clone(),
                line: s.line,
                rule: Rule::LedgerStale,
                message: format!(
                    "site 0x{:016x} appears {} time(s) but {ledger_name} records {n}; \
                     re-bless after review",
                    s.hash, s.count
                ),
            }),
            Some(_) => {}
        }
    }
    for (file, hash) in ledger.keys() {
        if !seen.contains_key(&(file.clone(), *hash)) {
            v.push(Violation {
                file: ledger_name.clone(),
                line: 1,
                rule: Rule::LedgerStale,
                message: format!(
                    "ledger row ({file}, 0x{hash:016x}) matches no unsafe site; \
                     the code changed — re-bless after review"
                ),
            });
        }
    }
    v
}

/// Renders the ledger from the scanned sites.
// One single-line literal per output line: the audit scans its own
// sources, and the line-local stripper only elides string contents
// that open and close on the same line.
pub fn render_ledger(sites: &[UnsafeSite]) -> String {
    let mut out = String::from("# Unsafe Ledger\n\n");
    out.push_str("Every `unsafe` site in the workspace, keyed by an FNV-1a 64 hash of its\n");
    out.push_str("`// SAFETY:` comment plus the unsafe line. `cargo xtask audit` fails when a\n");
    out.push_str("site is added, removed, or edited without updating this file; after\n");
    out.push_str("reviewing the change, regenerate it with `cargo xtask audit --bless`.\n");
    out.push_str("Generated file — do not edit rows by hand.\n\n");
    out.push_str("| File | Context hash | Sites | Invariant |\n");
    out.push_str("|---|---|---|---|\n");
    for s in sites {
        out.push_str(&format!(
            "| `{}` | `0x{:016x}` | {} | {} |\n",
            s.file, s.hash, s.count, s.invariant
        ));
    }
    out
}

/// Re-generates the ledger, refusing while non-ledger violations exist
/// (a `--bless` must never paper over a missing SAFETY comment).
pub fn bless(cfg: &AuditConfig) -> std::io::Result<Result<usize, Vec<Violation>>> {
    let report = audit(cfg)?;
    let blocking: Vec<Violation> = report
        .violations
        .into_iter()
        .filter(|v| !matches!(v.rule, Rule::LedgerMissing | Rule::LedgerStale))
        .collect();
    if !blocking.is_empty() {
        return Ok(Err(blocking));
    }
    std::fs::write(&cfg.ledger_path, render_ledger(&report.sites))?;
    Ok(Ok(report.sites.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // Published FNV-1a 64 test vector.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn strip_removes_strings_comments_and_char_literals() {
        assert_eq!(strip_code("let x = \"magic\"; // magic"), "let x = \"\"; ");
        assert_eq!(strip_code("if c == '\"' { a(); }"), "if c ==  { a(); }");
        assert_eq!(
            strip_code("fn f<'a>(x: &'a u8) {}"),
            "fn f<'a>(x: &'a u8) {}"
        );
        // The banned words never survive inside literals or comments.
        let word = ["un", "safe"].concat();
        assert!(!has_word(
            &strip_code(&format!("let s = \"{word}\";")),
            &word
        ));
        assert!(!has_word(&strip_code(&format!("x(); // {word}")), &word));
    }

    #[test]
    fn strip_elides_raw_string_contents() {
        // A raw string containing a banned keyword must not fire...
        let spawn = ["thread", "::spawn"].concat();
        assert!(!has_word(
            &strip_code(&format!("let s = r\"{spawn}\";")),
            &spawn
        ));
        let word = ["un", "safe"].concat();
        assert!(!has_word(
            &strip_code(&format!("let s = r#\"{word}\"#;")),
            &word
        ));
        assert!(!has_word(
            &strip_code(&format!("let s = br\"{word}\";")),
            &word
        ));
        // ...and a raw string must not mask code after it (the closing
        // quote of `r"\"` is the first `"`, not an escaped one).
        let code = strip_code(&format!("let s = r\"\\\"; {word} {{}}"));
        assert!(has_word(&code, &word), "code after raw string kept: {code}");
        // Hashed delimiters: `"#` inside `r##"…"##` does not close it.
        let code = strip_code(&format!("let s = r##\"x\"# {word}\"##; f()"));
        assert!(!has_word(&code, &word));
        assert!(code.contains("f()"));
        // `r` as an identifier tail is not a raw-string prefix.
        assert_eq!(strip_code("let var = 1;"), "let var = 1;");
        assert_eq!(strip_code("for r in v {}"), "for r in v {}");
        // Unterminated on this line: rest of the line is elided
        // (line-local stripper; multi-line raw strings stay out of
        // kernel/unsafe code by workspace style).
        assert!(!has_word(&strip_code(&format!("r\"{word}")), &word));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe impl Send", "unsafe"));
        assert!(!has_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(has_word("std::thread::spawn(|| {})", "thread::spawn"));
        assert!(!has_word("my_thread::spawner()", "thread::spawn"));
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines: Vec<&str> = src.lines().collect();
        let t = test_regions(&lines);
        assert_eq!(t, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn safety_scan_skips_siblings_and_wrappers() {
        // Single-line literals so the audit's self-scan elides them.
        let src = concat!(
            "// SAFETY: serialized by the scheduler.\n",
            "unsafe impl Send for X {}\n",
            "unsafe impl Sync for X {}\n",
            "fn f() {\n",
            "    // SAFETY: p valid by contract.\n",
            "    let v: &mut [u8] =\n",
            "        unsafe { from_raw_parts_mut(p, n) };\n",
            "}\n",
        );
        let lines: Vec<&str> = src.lines().collect();
        assert!(!comment_block_above(&lines, 1).is_empty());
        assert!(!comment_block_above(&lines, 2).is_empty()); // skips line 1
        assert!(!comment_block_above(&lines, 6).is_empty()); // skips `… =`
    }
}
