//! A dependency-free Rust lexer producing byte-span tokens.
//!
//! Unlike the audit's line-local `strip_code`, this lexer handles the
//! full literal grammar — raw strings with any `#` delimiter count,
//! byte/raw-byte strings, char literals vs. lifetimes, nested block
//! comments, numeric literals with exponents and suffixes — and it
//! never discards bytes: the produced tokens **tile** the input (every
//! byte belongs to exactly one token, in order), which is the property
//! the corpus round-trip test in `tests/analyze_lexer.rs` pins over
//! every `.rs` file in the workspace.
//!
//! The lexer is total: any byte sequence lexes without panicking.
//! Malformed input degrades to `Unknown`/unterminated-literal tokens
//! rather than errors — a source-level linter must keep scanning past
//! whatever it does not understand.

/// What a [`Token`] is. The token's text is `&src[start..end]`; kinds
/// carry no owned data so lexing never allocates per token beyond the
/// output vector itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// `'a`, `'static` — a `'` followed by identifier chars with no
    /// closing quote.
    Lifetime,
    /// Numeric literal, exponents and type suffixes included.
    Number,
    /// `"…"` or `b"…"` with escapes; may span lines.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`; may span lines, no escapes.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nested.
    BlockComment,
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// A single punctuation character (`{`, `:`, `!`, …). Multi-char
    /// operators are consecutive `Punct` tokens; pattern helpers match
    /// sequences, so no joining pass is needed.
    Punct,
    /// A byte the lexer has no rule for (stray `\\` outside a literal,
    /// non-ASCII punctuation, …).
    Unknown,
}

/// One lexed token: kind plus the byte span into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// True for bytes that can start an identifier.
fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// True for bytes that can continue an identifier.
fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'s> {
    src: &'s str,
    /// Byte position (always on a char boundary).
    pos: usize,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Lexes `src` into a token list that tiles the input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src, pos: 0 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let kind = lex_one(&mut cur, c);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
        });
    }
    out
}

fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    if c.is_whitespace() {
        cur.eat_while(|c| c.is_whitespace());
        return TokenKind::Whitespace;
    }
    if c == '/' {
        match cur.peek_at(1) {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return TokenKind::LineComment;
            }
            Some('*') => {
                return lex_block_comment(cur);
            }
            _ => {
                cur.bump();
                return TokenKind::Punct;
            }
        }
    }
    // Raw / byte string prefixes must win over plain identifiers:
    // `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `b'…'`.
    if c == 'r' || c == 'b' {
        if let Some(kind) = try_lex_prefixed_literal(cur) {
            return kind;
        }
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        return lex_number(cur);
    }
    match c {
        '"' => lex_str(cur),
        '\'' => lex_quote(cur),
        _ if c.is_ascii_punctuation() => {
            cur.bump();
            TokenKind::Punct
        }
        _ => {
            cur.bump();
            TokenKind::Unknown
        }
    }
}

/// Nested block comment; unterminated runs to end of input.
fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match cur.bump() {
            None => break,
            Some('/') if cur.peek() == Some('*') => {
                cur.bump();
                depth += 1;
            }
            Some('*') if cur.peek() == Some('/') => {
                cur.bump();
                depth -= 1;
            }
            Some(_) => {}
        }
    }
    TokenKind::BlockComment
}

/// `r`/`b`-prefixed literal, or `None` when the prefix is just an
/// identifier start (`radius`, `b2`, …). The cursor only advances on
/// success.
fn try_lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let c = cur.peek()?;
    // Longest valid prefix first: br / rb? (only `br` exists), then
    // single-letter.
    let (prefix_len, raw) = if c == 'b' {
        match cur.peek_at(1) {
            Some('r') => {
                // `br` must be followed by #*" to be a raw byte string.
                (2, true)
            }
            Some('"') => (1, false),
            Some('\'') => {
                // Byte char literal b'x'.
                cur.bump(); // b
                lex_quote(cur);
                return Some(TokenKind::Char);
            }
            _ => return None,
        }
    } else {
        // c == 'r'
        (1, true)
    };
    if raw {
        // Count hashes after the prefix, then require a quote.
        let mut hashes = 0usize;
        while cur.peek_at(prefix_len + hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek_at(prefix_len + hashes) != Some('"') {
            return None;
        }
        for _ in 0..prefix_len + hashes + 1 {
            cur.bump();
        }
        // Scan for `"` + hashes closing delimiter; unterminated runs
        // to end of input.
        'outer: while let Some(c) = cur.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if cur.peek_at(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
        Some(TokenKind::RawStr)
    } else {
        cur.bump(); // b
        Some(lex_str(cur))
    }
}

/// `"…"` with `\` escapes; may span lines; unterminated runs to end of
/// input.
fn lex_str(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
    TokenKind::Str
}

/// A `'`: char literal or lifetime. Rust disambiguates as: `'` followed
/// by an escape, or by one char and a closing `'`, is a char literal;
/// otherwise identifier chars form a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume escape until closing quote
            // (or end of line for malformed input).
            cur.bump();
            cur.bump(); // the escaped char (n, ', x, u, …)
                        // \x7f and \u{…} forms: eat up to the closing quote on the
                        // same line.
            while let Some(c) = cur.peek() {
                if c == '\'' {
                    cur.bump();
                    break;
                }
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char, `'a` / `'static` a lifetime: look past
            // the full ident run for a closing quote.
            if cur.peek_at(1) == Some('\'') && !is_ident_continue_at(cur, 2) {
                cur.bump();
                cur.bump();
                TokenKind::Char
            } else {
                cur.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some(c) if c != '\'' => {
            // Non-ident single char: '(' , '0' handled by digit? digits
            // are ident_continue-false, so: consume char + closing
            // quote when present.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        _ => {
            // Lone or doubled quote.
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
    }
}

/// Whether the char at lookahead `n` continues an identifier (used to
/// tell `'a'` from the start of `'abc`).
fn is_ident_continue_at(cur: &Cursor<'_>, n: usize) -> bool {
    cur.peek_at(n).is_some_and(is_ident_continue)
}

/// Numeric literal: digits, `_`, hex/oct/bin prefixes, a fractional
/// part when followed by a digit (so `1..2` stays three tokens), and
/// exponents with signs. Type suffixes (`u32`, `f64`) ride along via
/// the alphanumeric rule. We never interpret the value, so the rule is
/// deliberately permissive.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut seen_dot = false;
    cur.bump();
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.bump();
            // Exponent sign: 1e-9 / 2.5E+3.
            if (c == 'e' || c == 'E') && matches!(cur.peek(), Some('+') | Some('-')) {
                // Only when a digit follows the sign — `1e-x` is not a
                // number continuation but `1e-9` is. Either way the
                // scan stays total.
                if cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                    cur.bump();
                }
            }
            continue;
        }
        if c == '.' && !seen_dot && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            seen_dot = true;
            cur.bump();
            continue;
        }
        break;
    }
    TokenKind::Number
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::Whitespace))
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn assert_tiles(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap/overlap at {pos} in {src:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "trailing bytes unlexed in {src:?}");
    }

    #[test]
    fn raw_strings_all_delimiters() {
        for src in [
            "r\"unsafe\"",
            "r#\"thread::spawn\"#",
            "r##\"a\"# b\"##",
            "br\"bytes\"",
            "br#\"x\"#",
        ] {
            assert_tiles(src);
            let k = kinds(src);
            assert_eq!(k.len(), 1, "{src:?} -> {k:?}");
            assert_eq!(k[0].0, TokenKind::RawStr);
        }
        // Multi-line raw string.
        let src = "let s = r#\"line1\nunsafe line2\"#; f();";
        assert_tiles(src);
        assert!(kinds(src)
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("line2")));
        assert!(kinds(src).iter().any(|(_, t)| *t == "f"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a u8) { let c = 'y'; let d = '\\n'; let e = '\\''; }";
        assert_tiles(src);
        let k = kinds(src);
        let chars: Vec<_> = k.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        let lifetimes: Vec<_> = k
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(chars.len(), 3, "{k:?}");
        assert_eq!(lifetimes.len(), 2, "{k:?}");
        assert_eq!(lifetimes[0].1, "'a");
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_tiles(src);
        let k = kinds(src);
        assert_eq!(k.len(), 3);
        assert_eq!(k[1].0, TokenKind::BlockComment);
        assert!(k[1].1.contains("inner"));
    }

    #[test]
    fn numbers_and_ranges() {
        assert_tiles("1..2");
        let k = kinds("1..2");
        assert_eq!(
            k.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Number,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Number
            ]
        );
        for src in ["1e-9", "2.5E+3", "0xFF_u32", "1_000.5f64"] {
            assert_tiles(src);
            let k = kinds(src);
            assert_eq!(k.len(), 1, "{src:?} -> {k:?}");
            assert_eq!(k[0].0, TokenKind::Number);
        }
    }

    #[test]
    fn byte_literals() {
        assert_eq!(kinds("b'x'")[0].0, TokenKind::Char);
        assert_eq!(kinds("b\"bytes\"")[0].0, TokenKind::Str);
        // `b2` and `radius` are plain identifiers.
        assert_eq!(kinds("b2")[0].0, TokenKind::Ident);
        assert_eq!(kinds("radius")[0].0, TokenKind::Ident);
    }

    #[test]
    fn strings_swallow_keywords_and_braces() {
        let src = "let s = \"unsafe { } \\\" r#\"; g()";
        assert_tiles(src);
        let k = kinds(src);
        assert!(k.iter().any(|(_, t)| *t == "g"));
        assert!(!k
            .iter()
            .any(|(kind, t)| *kind == TokenKind::Ident && *t == "unsafe"));
    }

    #[test]
    fn unterminated_literals_are_total() {
        for src in ["\"never closed", "r#\"open", "/* open", "'", "b'"] {
            assert_tiles(src);
        }
    }

    #[test]
    fn non_ascii_is_total() {
        for src in ["let s = \"héllo\";", "// über\nfn f() {}", "¿?"] {
            assert_tiles(src);
        }
    }
}
