//! Diagnostics: the common finding type plus human and `--json`
//! renderers, shared by `cargo xtask audit` and `cargo xtask analyze`
//! so the two passes print identically and cannot drift.

use std::fmt;

/// One diagnostic, pointing at `file:line`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule id (`BNS-A001` … / audit rule slug).
    pub rule: String,
    /// Short rule name (`determinism-reachability`).
    pub name: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong, one sentence.
    pub message: String,
    /// Optional supporting detail (an example call path, the offending
    /// snippet).
    pub note: Option<String>,
    /// Allowlist context hash (0 when the finding is not allowable,
    /// e.g. ledger bookkeeping findings).
    pub key: u64,
    /// Whether `cargo xtask analyze --bless` can resolve this finding
    /// by regenerating generated files (ledger/registry bookkeeping).
    /// Real rule violations are never blessable.
    pub blessable: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file, self.line, self.rule, self.name, self.message
        )?;
        if let Some(note) = &self.note {
            write!(f, "\n    note: {note}")?;
        }
        Ok(())
    }
}

/// Renders findings for humans, one per line (notes indented).
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array (hand-rolled: the workspace builds
/// offline with no serde).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\":{}", json_str(&f.rule)));
        out.push_str(&format!(",\"name\":{}", json_str(&f.name)));
        out.push_str(&format!(",\"file\":{}", json_str(&f.file)));
        out.push_str(&format!(",\"line\":{}", f.line));
        out.push_str(&format!(",\"message\":{}", json_str(&f.message)));
        if let Some(note) = &f.note {
            out.push_str(&format!(",\"note\":{}", json_str(note)));
        }
        if f.key != 0 {
            out.push_str(&format!(",\"key\":\"0x{:016x}\"", f.key));
        }
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "BNS-A001".into(),
            name: "determinism-reachability".into(),
            file: "crates/core/src/exchange.rs".into(),
            line: 42,
            message: "`Instant::now` reachable from kernel entry".into(),
            note: Some("send_boundary_rows -> helper".into()),
            key: 0xdead_beef,
            blessable: false,
        }
    }

    #[test]
    fn human_format_is_file_line_rule() {
        let s = render_human(&[sample()]);
        assert!(
            s.starts_with("crates/core/src/exchange.rs:42: [BNS-A001 determinism-reachability]")
        );
        assert!(s.contains("note: send_boundary_rows -> helper"));
    }

    #[test]
    fn json_escapes_and_roundtrips_fields() {
        let mut f = sample();
        f.message = "has \"quotes\" and\nnewline\tand tab \\ backslash".into();
        let s = render_json(&[f]);
        assert!(s.contains("\\\"quotes\\\""));
        assert!(s.contains("\\n"));
        assert!(s.contains("\\t"));
        assert!(s.contains("\\\\ backslash"));
        assert!(s.contains("\"line\":42"));
        assert!(s.contains("\"key\":\"0x00000000deadbeef\""));
        // Empty list is a bare array.
        assert_eq!(render_json(&[]), "[]\n");
    }
}
