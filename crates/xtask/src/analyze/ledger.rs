//! The analyzer's allowlist: `// bns-allow(RULE): reason` comments
//! mirrored in a hash-keyed `ANALYZE_LEDGER.md`, with the same
//! invalidation discipline as `UNSAFE_LEDGER.md` — the context hash
//! covers the rule, the covered code line, and the written reason, so
//! editing any of them invalidates the ledger row and forces a
//! deliberate `cargo xtask analyze --bless` after review.
//!
//! An allow comment suppresses findings of exactly one rule on the
//! line it covers: the same line for a trailing comment, the next code
//! line for a comment on its own line. Three meta findings (rule
//! `BNS-A000`) keep the system honest: an allow in use but missing
//! from the ledger, a ledger row whose allow is gone, and an allow
//! that no longer suppresses anything (stale comments must be removed,
//! not accumulated).

use super::diag::Finding;
use super::parser::SourceFile;
use crate::analyze::lexer::TokenKind;
use crate::fnv1a64;
use std::collections::BTreeMap;

/// Meta-rule id for allowlist bookkeeping findings.
pub const META_RULE: &str = "BNS-A000";
pub const META_NAME: &str = "allow-ledger";

/// One parsed `// bns-allow(RULE): reason` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Workspace-relative path.
    pub file: String,
    /// Rule id the allow targets (`BNS-A001`, …).
    pub rule: String,
    /// The written justification (required).
    pub reason: String,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// 1-based line the allow covers (same line for trailing comments,
    /// next code line otherwise).
    pub covered_line: usize,
    /// FNV-1a 64 over `rule | covered code line (trimmed) | reason`.
    pub key: u64,
}

/// Extracts every allow comment from one parsed file.
pub fn collect_allows(sf: &SourceFile) -> Vec<Allow> {
    let mut out = Vec::new();
    let lines: Vec<&str> = sf.text.lines().collect();
    for tok in &sf.tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text(&sf.text);
        let Some((rule, reason)) = parse_allow_comment(text) else {
            continue;
        };
        let comment_line = sf.line_of(tok.start);
        // Trailing comment: code precedes it on the same line.
        let line_text = lines.get(comment_line - 1).copied().unwrap_or("");
        let before = &line_text[..line_text.find("//").unwrap_or(0)];
        let covered_line = if !before.trim().is_empty() {
            comment_line
        } else {
            // Next non-comment, non-blank line.
            let mut l = comment_line; // 0-based index of the next line
            loop {
                match lines.get(l) {
                    None => break comment_line,
                    Some(t) if t.trim().is_empty() || t.trim().starts_with("//") => l += 1,
                    Some(_) => break l + 1,
                }
            }
        };
        let covered_text = lines.get(covered_line - 1).map(|l| l.trim()).unwrap_or("");
        let key = allow_key(&rule, covered_text, &reason);
        out.push(Allow {
            file: sf.rel.clone(),
            rule,
            reason,
            comment_line,
            covered_line,
            key,
        });
    }
    out
}

/// `bns-allow(BNS-A003): the reason text` -> (rule, reason). The
/// comment may carry leading `//`/`//!` markers and indentation.
fn parse_allow_comment(comment: &str) -> Option<(String, String)> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let rest = body.strip_prefix("bns-allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let reason = rest[close + 1..].trim_start_matches(':').trim().to_string();
    Some((rule, reason))
}

/// The allow's ledger key.
pub fn allow_key(rule: &str, covered_text: &str, reason: &str) -> u64 {
    fnv1a64(format!("{rule}|{covered_text}|{reason}").as_bytes())
}

/// `(file, rule, key) -> count` as recorded in ANALYZE_LEDGER.md.
pub type AllowLedger = BTreeMap<(String, String, u64), usize>;

/// Parses the checked-in ledger (markdown table, same shape as
/// UNSAFE_LEDGER.md).
pub fn parse_allow_ledger(text: &str) -> AllowLedger {
    let mut out = AllowLedger::new();
    for line in text.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 4 || cells[0] == "File" || cells[0].starts_with("---") {
            continue;
        }
        let file = cells[0].trim_matches('`').to_string();
        let rule = cells[1].trim_matches('`').to_string();
        let Some(key) = cells[2]
            .trim_matches('`')
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
        else {
            continue;
        };
        *out.entry((file, rule, key)).or_insert(0) += 1;
    }
    out
}

/// Renders the ledger from the in-use allows.
pub fn render_allow_ledger(allows: &[Allow]) -> String {
    let mut out = String::from("# Analyze Allowlist Ledger\n\n");
    out.push_str(
        "Every `// bns-allow(rule): reason` comment the static analyzer\n\
         (`cargo xtask analyze`) honors, keyed by an FNV-1a 64 hash of the rule,\n\
         the covered code line, and the written reason. Editing any of the three\n\
         invalidates the row; after reviewing the change, regenerate this file\n\
         with `cargo xtask analyze --bless`. An allow that stops suppressing a\n\
         finding must be deleted from the source, not re-blessed.\n\
         Generated file — do not edit rows by hand.\n\n",
    );
    out.push_str("| File | Rule | Context hash | Reason |\n");
    out.push_str("|---|---|---|---|\n");
    let mut sorted: Vec<&Allow> = allows.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.file, a.covered_line, &a.rule).cmp(&(&b.file, b.covered_line, &b.rule))
    });
    for a in sorted {
        out.push_str(&format!(
            "| `{}` | `{}` | `0x{:016x}` | {} |\n",
            a.file,
            a.rule,
            a.key,
            a.reason.replace('|', "/")
        ));
    }
    out
}

/// Splits raw rule findings into (surviving, used allows) and appends
/// the meta findings that keep comments and ledger in sync.
pub struct AllowOutcome {
    /// Findings not suppressed by any allow, plus meta findings.
    pub findings: Vec<Finding>,
    /// Allows that suppressed at least one finding.
    pub used: Vec<Allow>,
}

pub fn apply_allows(raw: Vec<Finding>, allows: &[Allow], ledger: &AllowLedger) -> AllowOutcome {
    let mut used_flags = vec![false; allows.len()];
    let mut findings = Vec::new();
    for f in raw {
        let matched = allows
            .iter()
            .position(|a| a.file == f.file && a.rule == f.rule && a.covered_line == f.line);
        match matched {
            Some(i) => used_flags[i] = true,
            None => findings.push(f),
        }
    }
    let used: Vec<Allow> = allows
        .iter()
        .zip(&used_flags)
        .filter(|(_, &u)| u)
        .map(|(a, _)| a.clone())
        .collect();

    // Meta: every in-use allow must be ledgered, with matching counts.
    let mut seen: AllowLedger = AllowLedger::new();
    for a in &used {
        *seen
            .entry((a.file.clone(), a.rule.clone(), a.key))
            .or_insert(0) += 1;
    }
    for a in &used {
        let key = (a.file.clone(), a.rule.clone(), a.key);
        let live = seen[&key];
        match ledger.get(&key) {
            Some(&n) if n == live => {}
            Some(&n) => findings.push(meta_finding(
                a,
                format!(
                    "allow appears {live} time(s) but the ledger records {n}; \
                     re-bless after review"
                ),
                true,
            )),
            None => findings.push(meta_finding(
                a,
                format!(
                    "allow 0x{:016x} is not registered in ANALYZE_LEDGER.md; review it \
                     and run `cargo xtask analyze --bless`",
                    a.key
                ),
                true,
            )),
        }
    }
    // Meta: unused allow comments are dead suppressions — delete them.
    for (a, &u) in allows.iter().zip(&used_flags) {
        if !u {
            findings.push(meta_finding(
                a,
                format!(
                    "allow for {} suppresses no finding; the code changed — remove \
                     the stale `bns-allow` comment",
                    a.rule
                ),
                false,
            ));
        }
    }
    // Meta: ledger rows whose allow is gone.
    for ((file, rule, key), _) in ledger.iter() {
        if !seen.contains_key(&(file.clone(), rule.clone(), *key)) {
            findings.push(Finding {
                rule: META_RULE.into(),
                name: META_NAME.into(),
                file: "ANALYZE_LEDGER.md".into(),
                line: 1,
                message: format!(
                    "ledger row ({file}, {rule}, 0x{key:016x}) matches no in-use allow; \
                     the code changed — re-bless after review"
                ),
                note: None,
                key: *key,
                blessable: true,
            });
        }
    }
    AllowOutcome { findings, used }
}

fn meta_finding(a: &Allow, message: String, blessable: bool) -> Finding {
    Finding {
        rule: META_RULE.into(),
        name: META_NAME.into(),
        file: a.file.clone(),
        line: a.comment_line,
        message,
        note: Some(format!("reason on record: {}", a.reason)),
        key: a.key,
        blessable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("f.rs".into(), src.to_string())
    }

    #[test]
    fn parses_own_line_and_trailing_allows() {
        let src = "\
// bns-allow(BNS-A001): registry lookup only
let m = HashMap::new();
let t = Instant::now(); // bns-allow(BNS-A001): telemetry site
";
        let allows = collect_allows(&sf(src));
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, "BNS-A001");
        assert_eq!(allows[0].covered_line, 2);
        assert_eq!(allows[0].reason, "registry lookup only");
        assert_eq!(allows[1].covered_line, 3);
        assert_eq!(allows[1].reason, "telemetry site");
    }

    #[test]
    fn own_line_allow_skips_comment_continuations() {
        let src = "\
// bns-allow(BNS-A005): arena steady state
// (reached via take_buf)
let v = vec![0.0; n];
";
        let allows = collect_allows(&sf(src));
        assert_eq!(allows[0].covered_line, 3);
    }

    #[test]
    fn key_covers_rule_line_and_reason() {
        let a = allow_key("BNS-A001", "let m = HashMap::new();", "why");
        assert_ne!(a, allow_key("BNS-A002", "let m = HashMap::new();", "why"));
        assert_ne!(a, allow_key("BNS-A001", "let m = HashMap::new() ;", "why"));
        assert_ne!(a, allow_key("BNS-A001", "let m = HashMap::new();", "other"));
    }

    #[test]
    fn ledger_roundtrip() {
        let src = "// bns-allow(BNS-A001): fine\nlet m = HashMap::new();\n";
        let allows = collect_allows(&sf(src));
        let text = render_allow_ledger(&allows);
        let parsed = parse_allow_ledger(&text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            parsed[&("f.rs".to_string(), "BNS-A001".to_string(), allows[0].key)],
            1
        );
    }

    fn raw_finding(file: &str, rule: &str, line: usize) -> Finding {
        Finding {
            rule: rule.into(),
            name: "x".into(),
            file: file.into(),
            line,
            message: "m".into(),
            note: None,
            key: 0,
            blessable: false,
        }
    }

    #[test]
    fn apply_suppresses_and_flags_bookkeeping() {
        let src = "// bns-allow(BNS-A001): fine\nlet m = HashMap::new();\n// bns-allow(BNS-A003): dead\nlet x = 1;\n";
        let allows = collect_allows(&sf(src));
        let raw = vec![
            raw_finding("f.rs", "BNS-A001", 2),
            raw_finding("f.rs", "BNS-A009", 2),
        ];
        // Empty ledger: the used allow is unledgered, the unused one
        // stale, the unmatched finding survives.
        let out = apply_allows(raw, &allows, &AllowLedger::new());
        assert_eq!(out.used.len(), 1);
        assert!(out.findings.iter().any(|f| f.rule == "BNS-A009"));
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == META_RULE && f.message.contains("not registered")));
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == META_RULE && f.message.contains("suppresses no finding")));

        // Ledger in sync: only the unused-allow meta finding remains.
        let ledger = parse_allow_ledger(&render_allow_ledger(&out.used));
        let raw = vec![raw_finding("f.rs", "BNS-A001", 2)];
        let out = apply_allows(raw, &allows, &ledger);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("suppresses no finding"));
    }

    #[test]
    fn stale_ledger_row_is_flagged() {
        let mut ledger = AllowLedger::new();
        ledger.insert(("gone.rs".into(), "BNS-A001".into(), 7), 1);
        let out = apply_allows(Vec::new(), &[], &ledger);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("matches no in-use allow"));
    }
}
