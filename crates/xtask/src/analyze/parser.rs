//! Lightweight item/expression parser over the lexer's token stream.
//!
//! This is not a full Rust parser — it extracts exactly the structure
//! the rules need, and degrades gracefully on anything else:
//!
//! * **Functions**: every `fn` item, with its name, enclosing `impl`
//!   type and trait (so `BoundaryRecvOp::poll` and `Task for RankTask`
//!   are addressable), body token range, and whether it lives in test
//!   code (`#[cfg(test)]` region or a `tests/`/`benches/` path).
//! * **Call events** inside each body: free/path calls
//!   (`codec::pack_f16(..)`), method calls (`.poll(..)`), and macro
//!   invocations (`vec![..]`) — the edges the call graph resolves.
//! * **Lock events**: `.lock()` receivers classified to a lock class
//!   (last field identifier), whether the guard is `let`-bound (held to
//!   end of scope) or a temporary (dropped at the statement's end), and
//!   explicit `drop(guard)` releases — the inputs to the lock-order
//!   rule.
//!
//! Everything is index-based into a per-file significant-token vector
//! (comments/whitespace filtered out but retained separately so the
//! allowlist scanner can see `// bns-allow(...)` comments).

use super::lexer::{lex, Token, TokenKind};

/// A parsed source file: raw text, full token tiling, the significant
/// (non-trivia) tokens, and a line index.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub text: String,
    /// All tokens, tiling `text`.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-whitespace, non-comment tokens.
    pub sig: Vec<usize>,
    /// Byte offset of each line start (line 1 at index 0).
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(rel: String, text: String) -> Self {
        let tokens = lex(&text);
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel,
            text,
            tokens,
            sig,
            line_starts,
        }
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The `i`th significant token (panics on out of range).
    pub fn sig_tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Text of the `i`th significant token.
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig_tok(i).text(&self.text)
    }

    /// 1-based line of the `i`th significant token.
    pub fn sig_line(&self, i: usize) -> usize {
        self.line_of(self.sig_tok(i).start)
    }

    /// Whether significant token `i` is an identifier equal to `s`.
    pub fn sig_is(&self, i: usize, s: &str) -> bool {
        i < self.sig.len() && self.sig_text(i) == s
    }

    /// Whether significant token `i` is an `Ident`.
    pub fn sig_is_ident(&self, i: usize) -> bool {
        i < self.sig.len() && self.sig_tok(i).kind == TokenKind::Ident
    }
}

/// A call-shaped event inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `a::b::c(…)` — segments of the path, last one the callee name.
    Call {
        segments: Vec<String>,
        tok: usize,
    },
    /// `.name(…)`.
    MethodCall {
        name: String,
        tok: usize,
    },
    /// `name!(…)` / `name![…]`.
    Macro {
        name: String,
        tok: usize,
    },
    /// `.lock()` acquisition: class = receiver's last field identifier.
    Lock {
        class: String,
        /// Guard binding (`let g = ….lock()…`), `None` for temporaries.
        guard: Option<String>,
        /// Brace depth at the acquisition (relative to body start).
        depth: usize,
        tok: usize,
    },
    /// `drop(guard)` — releases a held guard early.
    Drop {
        name: String,
        tok: usize,
    },
    /// `{` / `}` with resulting depth — lets rules replay scopes.
    Open {
        depth: usize,
    },
    Close {
        depth: usize,
    },
}

/// One `fn` item.
#[derive(Debug)]
pub struct Function {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` self-type name, when inside an impl block.
    pub impl_type: Option<String>,
    /// Enclosing `impl Trait for Type` trait name.
    pub trait_name: Option<String>,
    /// Index of the owning [`SourceFile`] in the workspace list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Range of significant-token indices covering the body, braces
    /// excluded. Empty for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Whether the parameter list starts with a `self` receiver. Method
    /// calls (`.name(…)`) only resolve to receiver-taking functions —
    /// `.load(Ordering)` on an atomic must not resolve to an associated
    /// `Type::load(path)` constructor.
    pub has_self: bool,
    /// True inside `#[cfg(test)]` regions or `tests/`/`benches/` paths.
    pub is_test: bool,
    /// Call/lock/scope events in body order.
    pub events: Vec<Event>,
}

impl Function {
    /// `Type::name` when inside an impl block, else the bare name.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "in", "move", "fn", "as", "where",
    "let", "mut", "ref", "box", "await", "yield", "dyn", "impl", "pub", "use", "mod", "unsafe",
];

/// Parses every function (with events) out of one file. `path_is_test`
/// marks the whole file as test code (integration tests, benches).
pub fn parse_functions(sf: &SourceFile, file_idx: usize, path_is_test: bool) -> Vec<Function> {
    let mut out = Vec::new();
    let n = sf.sig.len();
    // Context stack entries: (brace depth it opened at, kind).
    #[derive(Clone)]
    enum Ctx {
        Impl {
            type_name: Option<String>,
            trait_name: Option<String>,
        },
        Test,
        Other,
    }
    let mut ctx: Vec<(usize, Ctx)> = Vec::new();
    let mut depth = 0usize;
    // Attributes seen since the last item-ish token; `#[cfg(test)]`
    // makes the next block a Test context.
    let mut pending_cfg_test = false;
    let mut i = 0usize;
    while i < n {
        let text = sf.sig_text(i);
        match text {
            "#" => {
                // Attribute: `#[…]` or `#![…]` — scan the bracket group
                // for `cfg ( test )`.
                let mut j = i + 1;
                if sf.sig_is(j, "!") {
                    j += 1;
                }
                if sf.sig_is(j, "[") {
                    let close = match_group(sf, j, "[", "]");
                    let mut k = j + 1;
                    while k + 3 < close {
                        if sf.sig_is(k, "cfg")
                            && sf.sig_is(k + 1, "(")
                            && sf.sig_is(k + 2, "test")
                            && sf.sig_is(k + 3, ")")
                        {
                            pending_cfg_test = true;
                            break;
                        }
                        k += 1;
                    }
                    i = close + 1;
                    continue;
                }
                i += 1;
            }
            "{" => {
                depth += 1;
                if pending_cfg_test {
                    // The cfg(test) attribute attaches to the item this
                    // brace opens (mod tests { … }).
                    ctx.push((depth, Ctx::Test));
                    pending_cfg_test = false;
                } else {
                    ctx.push((depth, Ctx::Other));
                }
                i += 1;
            }
            "}" => {
                while ctx.last().is_some_and(|(d, _)| *d >= depth) {
                    ctx.pop();
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            "impl" => {
                // Parse the impl header up to its `{`.
                let (type_name, trait_name, body_open) = parse_impl_header(sf, i);
                if let Some(open) = body_open {
                    depth += 1;
                    let kind = if pending_cfg_test {
                        Ctx::Test
                    } else {
                        Ctx::Impl {
                            type_name,
                            trait_name,
                        }
                    };
                    pending_cfg_test = false;
                    ctx.push((depth, kind));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "macro_rules" => {
                // `macro_rules! name { … }` — skip the opaque body.
                let mut j = i + 1;
                while j < n && !sf.sig_is(j, "{") {
                    j += 1;
                }
                if j < n {
                    i = match_group(sf, j, "{", "}") + 1;
                } else {
                    i = n;
                }
            }
            "fn" => {
                let in_test = pending_cfg_test
                    || path_is_test
                    || ctx.iter().any(|(_, c)| matches!(c, Ctx::Test));
                pending_cfg_test = false;
                let (impl_type, trait_name) = ctx
                    .iter()
                    .rev()
                    .find_map(|(_, c)| match c {
                        Ctx::Impl {
                            type_name,
                            trait_name,
                        } => Some((type_name.clone(), trait_name.clone())),
                        _ => None,
                    })
                    .unwrap_or((None, None));
                if let Some((func, next)) =
                    parse_fn(sf, i, file_idx, impl_type, trait_name, in_test)
                {
                    out.push(func);
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

/// From an `impl` keyword: returns (self type name, trait name, index
/// of the opening `{`). `impl<T> Trait<U> for Type<T> { … }`.
fn parse_impl_header(
    sf: &SourceFile,
    impl_idx: usize,
) -> (Option<String>, Option<String>, Option<usize>) {
    let n = sf.sig.len();
    let mut i = impl_idx + 1;
    // Skip generic params `<…>` by bracket counting (`->` cannot appear
    // in an impl generic list).
    if sf.sig_is(i, "<") {
        let mut angle = 0isize;
        while i < n {
            match sf.sig_text(i) {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Collect path idents until `for`, `{`, or `where`.
    let mut first_path_last: Option<String> = None;
    let mut second_path_last: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0isize;
    while i < n {
        let t = sf.sig_text(i);
        match t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle <= 0 => {
                let (ty, tr) = if saw_for {
                    (second_path_last, first_path_last)
                } else {
                    (first_path_last, None)
                };
                return (ty, tr, Some(i));
            }
            ";" => return (None, None, None),
            "for" if angle <= 0 => saw_for = true,
            "where" if angle <= 0 => {
                // Type/trait names are fixed by now; scan on for `{`.
                while i < n && !sf.sig_is(i, "{") {
                    i += 1;
                }
                continue;
            }
            _ if angle == 0 && sf.sig_is_ident(i) && !matches!(t, "dyn" | "mut" | "const") => {
                let slot = if saw_for {
                    &mut second_path_last
                } else {
                    &mut first_path_last
                };
                *slot = Some(t.to_string());
            }
            _ => {}
        }
        i += 1;
    }
    (None, None, None)
}

/// Index of the significant token closing the group opened at `open`
/// (which must hold `open_sym`). Returns the last token index when
/// unbalanced.
fn match_group(sf: &SourceFile, open: usize, open_sym: &str, close_sym: &str) -> usize {
    let n = sf.sig.len();
    let mut depth = 0isize;
    let mut i = open;
    while i < n {
        let t = sf.sig_text(i);
        if t == open_sym {
            depth += 1;
        } else if t == close_sym {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    n.saturating_sub(1)
}

/// Parses one `fn` item starting at the `fn` keyword; returns the
/// function and the index to resume scanning at (past the body, so
/// nested closures stay inside this function's event list, but nested
/// `fn` items are re-scanned by the caller via the returned range).
fn parse_fn(
    sf: &SourceFile,
    fn_idx: usize,
    file_idx: usize,
    impl_type: Option<String>,
    trait_name: Option<String>,
    is_test: bool,
) -> Option<(Function, usize)> {
    let n = sf.sig.len();
    let name_idx = fn_idx + 1;
    if name_idx >= n || !sf.sig_is_ident(name_idx) {
        return None; // `fn(` type position
    }
    let name = sf.sig_text(name_idx).to_string();
    // Receiver detection: the first `(` after the name opens the
    // parameter list; a `self` before its first top-level comma is the
    // receiver.
    let mut has_self = false;
    {
        let mut j = name_idx + 1;
        while j < n && !sf.sig_is(j, "(") && !sf.sig_is(j, "{") && !sf.sig_is(j, ";") {
            j += 1;
        }
        if sf.sig_is(j, "(") {
            let pclose = match_group(sf, j, "(", ")");
            let mut k = j + 1;
            let mut depth = 1isize;
            while k < pclose {
                match sf.sig_text(k) {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "," if depth == 1 => break,
                    "self" => {
                        has_self = true;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
    // Find the body `{` or a `;` (trait method declaration) at
    // paren/bracket depth 0.
    let mut i = name_idx + 1;
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let body_open = loop {
        if i >= n {
            return None;
        }
        match sf.sig_text(i) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => break Some(i),
            ";" if paren == 0 && bracket == 0 => break None,
            _ => {}
        }
        i += 1;
    };
    let line = sf.sig_line(fn_idx);
    let Some(open) = body_open else {
        // Bodyless declaration.
        return Some((
            Function {
                name,
                impl_type,
                trait_name,
                file: file_idx,
                line,
                body: i..i,
                has_self,
                is_test,
                events: Vec::new(),
            },
            i + 1,
        ));
    };
    let close = match_group(sf, open, "{", "}");
    let body = open + 1..close;
    let events = extract_events(sf, body.clone());
    Some((
        Function {
            name,
            impl_type,
            trait_name,
            file: file_idx,
            line,
            body,
            has_self,
            is_test,
            events,
        },
        close + 1,
    ))
}

/// Walks a body token range and records call/lock/scope events.
fn extract_events(sf: &SourceFile, body: std::ops::Range<usize>) -> Vec<Event> {
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut i = body.start;
    while i < body.end {
        let t = sf.sig_text(i);
        match t {
            "#" => {
                // Statement attribute (`#[cfg(debug_assertions)]`):
                // skip the bracket group so `cfg(…)` is not a call.
                let mut j = i + 1;
                if sf.sig_is(j, "!") {
                    j += 1;
                }
                if sf.sig_is(j, "[") {
                    i = match_group(sf, j, "[", "]").min(body.end) + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            "{" => {
                depth += 1;
                events.push(Event::Open { depth });
                i += 1;
                continue;
            }
            "}" => {
                events.push(Event::Close { depth });
                depth = depth.saturating_sub(1);
                i += 1;
                continue;
            }
            _ => {}
        }
        if sf.sig_is_ident(i) && !NON_CALL_KEYWORDS.contains(&t) {
            let next = i + 1;
            // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
            if sf.sig_is(next, "!")
                && (sf.sig_is(next + 1, "(")
                    || sf.sig_is(next + 1, "[")
                    || sf.sig_is(next + 1, "{"))
            {
                events.push(Event::Macro {
                    name: t.to_string(),
                    tok: i,
                });
                i += 2;
                continue;
            }
            if sf.sig_is(next, "(") {
                // Method call, free call, or path call: look back.
                let prev_is_dot = i > body.start && sf.sig_is(i - 1, ".");
                if prev_is_dot {
                    if t == "lock" && sf.sig_is(next + 1, ")") {
                        let class = lock_class(sf, body.start, i);
                        let guard = guard_binding(sf, body.start, i);
                        events.push(Event::Lock {
                            class,
                            guard,
                            depth,
                            tok: i,
                        });
                    } else {
                        events.push(Event::MethodCall {
                            name: t.to_string(),
                            tok: i,
                        });
                    }
                } else {
                    let segments = path_segments(sf, body.start, i);
                    if segments.len() == 1 && segments[0] == "drop" {
                        // `drop(guard)` — record the dropped ident when
                        // it is a simple variable.
                        if sf.sig_is_ident(next + 1) && sf.sig_is(next + 2, ")") {
                            events.push(Event::Drop {
                                name: sf.sig_text(next + 1).to_string(),
                                tok: i,
                            });
                            i += 1;
                            continue;
                        }
                    }
                    events.push(Event::Call { segments, tok: i });
                }
            }
        }
        i += 1;
    }
    events
}

/// Path segments ending at the callee ident `i`: walks `a :: b :: c`
/// backwards.
fn path_segments(sf: &SourceFile, lo: usize, i: usize) -> Vec<String> {
    let mut segs = vec![sf.sig_text(i).to_string()];
    let mut j = i;
    while j >= lo + 2
        && sf.sig_is(j - 1, ":")
        && sf.sig_is(j - 2, ":")
        && j >= 3
        && sf.sig_is_ident(j - 3)
    {
        segs.push(sf.sig_text(j - 3).to_string());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// The lock class of a `.lock()` at callee index `i`: the nearest
/// preceding field/variable identifier in the receiver chain, skipping
/// balanced `(…)`/`[…]` groups (`slots[idx].lock()` -> `slots`,
/// `self.queue.lock()` -> `queue`, `registry().series.lock()` ->
/// `series`).
fn lock_class(sf: &SourceFile, lo: usize, i: usize) -> String {
    // i is `lock`, i-1 is `.`; walk back from i-2.
    let mut j = i.saturating_sub(2);
    loop {
        if j < lo {
            return "<unknown>".into();
        }
        let t = sf.sig_text(j);
        match t {
            ")" | "]" => {
                // Skip the balanced group backwards.
                let (open, close) = if t == ")" { ("(", ")") } else { ("[", "]") };
                let mut depth = 0isize;
                loop {
                    let u = sf.sig_text(j);
                    if u == close {
                        depth += 1;
                    } else if u == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == lo {
                        return "<unknown>".into();
                    }
                    j -= 1;
                }
                // j is at the opener; the receiver continues before it.
                if j == lo {
                    return "<unknown>".into();
                }
                j -= 1;
            }
            "." => {
                if j == lo {
                    return "<unknown>".into();
                }
                j -= 1;
            }
            _ if sf.sig_is_ident(j) && t != "self" => return t.to_string(),
            "self" => {
                // `self.lock()` — receiver is self itself; keep walking
                // only if a field preceded (it did not).
                return "self".into();
            }
            _ => return "<unknown>".into(),
        }
    }
}

/// When the statement containing token `i` starts with `let [mut] name
/// =`, the lock guard is bound to `name` (held to end of scope).
/// Statement start = nearest `;`, `{`, or `}` before `i`.
fn guard_binding(sf: &SourceFile, lo: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > lo {
        j -= 1;
        match sf.sig_text(j) {
            ";" | "{" | "}" => {
                j += 1;
                break;
            }
            _ => {}
        }
    }
    if !sf.sig_is(j, "let") {
        return None;
    }
    let mut k = j + 1;
    if sf.sig_is(k, "mut") {
        k += 1;
    }
    if sf.sig_is_ident(k) && sf.sig_is(k + 1, "=") {
        return Some(sf.sig_text(k).to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (SourceFile, Vec<Function>) {
        let sf = SourceFile::parse("test.rs".into(), src.to_string());
        let fns = parse_functions(&sf, 0, false);
        (sf, fns)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let src = r#"
            fn free(x: u8) -> u8 { helper(x) }
            struct S;
            impl S {
                pub fn method(&self) { other::path::call(); }
            }
            impl Clone for S {
                fn clone(&self) -> S { S }
            }
        "#;
        let (_sf, fns) = parse(src);
        let names: Vec<String> = fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["free", "S::method", "S::clone"]);
        assert_eq!(fns[2].trait_name.as_deref(), Some("Clone"));
        assert!(matches!(
            &fns[0].events[0],
            Event::Call { segments, .. } if segments == &vec!["helper".to_string()]
        ));
        assert!(matches!(
            &fns[1].events[0],
            Event::Call { segments, .. }
                if segments == &vec!["other".to_string(), "path".to_string(), "call".to_string()]
        ));
    }

    #[test]
    fn cfg_test_regions_mark_fns() {
        let src = r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
        "#;
        let (_sf, fns) = parse(src);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
        assert!(fns[2].is_test);
    }

    #[test]
    fn method_calls_and_macros() {
        let src = "fn f(v: &mut Vec<u8>) { v.push(1); let w = vec![0u8; 4]; g!{a} }";
        let (_sf, fns) = parse(src);
        let ev = &fns[0].events;
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::MethodCall { name, .. } if name == "push")));
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::Macro { name, .. } if name == "vec")));
        assert!(ev
            .iter()
            .any(|e| matches!(e, Event::Macro { name, .. } if name == "g")));
    }

    #[test]
    fn lock_events_classify_receivers() {
        let src = r#"
            fn f(&self) {
                let mut q = self.queue.lock().unwrap();
                q.push_back(1);
                drop(q);
                *self.waker.lock().unwrap() = None;
                let t = slots[idx].lock().unwrap();
            }
        "#;
        let (_sf, fns) = parse(src);
        let locks: Vec<(&str, Option<&str>)> = fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Lock { class, guard, .. } => Some((class.as_str(), guard.as_deref())),
                _ => None,
            })
            .collect();
        assert_eq!(
            locks,
            vec![("queue", Some("q")), ("waker", None), ("slots", Some("t")),]
        );
        assert!(fns[0]
            .events
            .iter()
            .any(|e| matches!(e, Event::Drop { name, .. } if name == "q")));
    }

    #[test]
    fn generic_impl_headers() {
        let src = r#"
            impl<T: Send> Wrapper<T> {
                fn get(&self) -> &T { &self.0 }
            }
            impl<'a, T> Iterator for Iter<'a, T> {
                fn next(&mut self) -> Option<T> { None }
            }
        "#;
        let (_sf, fns) = parse(src);
        assert_eq!(fns[0].qualified(), "Wrapper::get");
        assert_eq!(fns[1].qualified(), "Iter::next");
        assert_eq!(fns[1].trait_name.as_deref(), Some("Iterator"));
    }

    #[test]
    fn raw_strings_do_not_derail_items() {
        let src = "fn a() { let s = r#\"fn fake() { vec![] }\"#; }\nfn b() {}";
        let (_sf, fns) = parse(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(!fns[0]
            .events
            .iter()
            .any(|e| matches!(e, Event::Macro { name, .. } if name == "vec")));
    }

    #[test]
    fn nested_fns_are_split_out() {
        let src = "fn outer() { fn inner() { vec![1]; } inner(); }";
        let (_sf, fns) = parse(src);
        // The scan enters outer's body and re-parses `fn inner` as its
        // own function; outer resumes after it.
        assert!(fns.iter().any(|f| f.name == "outer"));
    }
}
