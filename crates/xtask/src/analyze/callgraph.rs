//! Intra-workspace call graph over the parsed functions.
//!
//! Resolution is name-based and deliberately **over-approximate**, but
//! shaped to keep the false-edge volume reviewable:
//!
//! * `Type::name(…)` resolves exactly against workspace `impl` blocks
//!   (`Self::` maps to the caller's impl type). A capitalized qualifier
//!   with no workspace impl is an external type (`Vec::new`,
//!   `Box::new`) and produces **no** edge — rules catch direct std
//!   calls by token pattern in the caller instead.
//! * `module::func(…)` and bare `func(…)` resolve to every workspace
//!   **free** function with that name.
//! * `.name(…)` method calls resolve to every workspace function named
//!   `name` that takes a `self` receiver — `.load(Ordering)` on an
//!   atomic must not resolve to an associated `Type::load(path)`.
//!
//! A static determinism lint must never miss a real edge, so remaining
//! false edges (same-named methods on unrelated types) are the right
//! trade against false clean passes; intentional hits they produce are
//! allowlisted with a written reason.
//!
//! All maps are `BTreeMap` and all visit orders index-based, so reports
//! are byte-stable across runs — the analyzer is held to the same
//! determinism bar it enforces.

use super::parser::{Event, Function};
use std::collections::BTreeMap;

/// Function id: index into the workspace function list.
pub type FnId = usize;

/// The resolved call graph.
pub struct CallGraph {
    /// Outgoing edges per function, deduplicated, ascending.
    pub calls: Vec<Vec<FnId>>,
    /// Free functions (no `self` receiver) by bare name.
    free_by_name: BTreeMap<String, Vec<FnId>>,
    /// Receiver-taking functions by bare name.
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Functions by `Type::name`.
    by_qualified: BTreeMap<String, Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph. Test functions neither create out-edges nor
    /// are resolution targets — test code is outside every rule's
    /// scope, and routing production reachability through a test helper
    /// would fabricate paths.
    pub fn build(fns: &[Function]) -> Self {
        let mut free_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_qualified: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if f.has_self {
                methods_by_name.entry(f.name.clone()).or_default().push(id);
            } else {
                free_by_name.entry(f.name.clone()).or_default().push(id);
            }
            by_qualified.entry(f.qualified()).or_default().push(id);
        }
        let mut graph = CallGraph {
            calls: Vec::with_capacity(fns.len()),
            free_by_name,
            methods_by_name,
            by_qualified,
        };
        for f in fns {
            let mut out: Vec<FnId> = Vec::new();
            if !f.is_test {
                for ev in &f.events {
                    out.extend(graph.resolve_event(ev, f.impl_type.as_deref()));
                }
            }
            out.sort_unstable();
            out.dedup();
            graph.calls.push(out);
        }
        graph
    }

    /// Resolves a single call-shaped event to its candidate callees —
    /// the same rules [`CallGraph::build`] uses for edges, exposed so
    /// rules can replay a body's events in order (the lock-order rule
    /// needs to know *where* in a function a callee's transitive locks
    /// are taken). `caller_impl` is the caller's `impl` type, used to
    /// resolve `Self::` paths.
    pub fn resolve_event(&self, ev: &Event, caller_impl: Option<&str>) -> Vec<FnId> {
        match ev {
            Event::Call { segments, .. } => self.resolve_call(segments, caller_impl),
            Event::MethodCall { name, .. } => {
                self.methods_by_name.get(name).cloned().unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    fn resolve_call(&self, segments: &[String], caller_impl: Option<&str>) -> Vec<FnId> {
        let Some(last) = segments.last() else {
            return Vec::new();
        };
        if segments.len() >= 2 {
            let mut qual = segments[segments.len() - 2].as_str();
            if qual == "Self" {
                if let Some(t) = caller_impl {
                    qual = t;
                }
            }
            if let Some(ids) = self.by_qualified.get(&format!("{qual}::{last}")) {
                return ids.clone();
            }
            // Capitalized qualifier with no workspace impl: an external
            // type's associated fn (`Vec::new`) — not a workspace edge.
            if qual.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                return Vec::new();
            }
            // `module::func(…)` — fall through to free-fn resolution.
        }
        self.free_by_name
            .get(last.as_str())
            .cloned()
            .unwrap_or_default()
    }

    /// Functions matching a config entry-point name: `Type::method`
    /// resolves qualified, a bare name matches any function (free or
    /// method) with that name.
    pub fn resolve_name(&self, name: &str) -> Vec<FnId> {
        if name.contains("::") {
            return self.by_qualified.get(name).cloned().unwrap_or_default();
        }
        let mut out = self.free_by_name.get(name).cloned().unwrap_or_default();
        out.extend(self.methods_by_name.get(name).cloned().unwrap_or_default());
        out.sort_unstable();
        out
    }

    /// BFS from `roots`, never descending **into** `stop` functions
    /// (they are visited but their callees are not — the arena
    /// allowlist cut). Returns, per reached function, the id of the
    /// caller it was first reached from (roots map to themselves), so
    /// rules can reconstruct an example path for diagnostics.
    pub fn reach(&self, roots: &[FnId], stop: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if stop.contains(&id) {
                continue;
            }
            for &callee in &self.calls[id] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(id);
                    queue.push_back(callee);
                }
            }
        }
        parent
    }

    /// Example path root -> … -> `target` from a [`CallGraph::reach`]
    /// parent map, rendered as qualified names.
    pub fn path_to(&self, parent: &BTreeMap<FnId, FnId>, target: FnId, fns: &[Function]) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        // Parent maps are acyclic by construction (first-reach), but
        // bound the walk anyway.
        for _ in 0..parent.len() + 1 {
            let Some(&p) = parent.get(&cur) else { break };
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&id| fns[id].qualified())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parser::{parse_functions, SourceFile};

    fn graph(src: &str) -> (Vec<Function>, CallGraph) {
        let sf = SourceFile::parse("t.rs".into(), src.to_string());
        let fns = parse_functions(&sf, 0, false);
        let cg = CallGraph::build(&fns);
        (fns, cg)
    }

    #[test]
    fn reachability_with_paths() {
        let src = r#"
            fn entry() { mid(); }
            fn mid() { leaf(); }
            fn leaf() {}
            fn unrelated() {}
        "#;
        let (fns, cg) = graph(src);
        let roots = cg.resolve_name("entry");
        let reach = cg.reach(&roots, &[]);
        assert_eq!(reach.len(), 3);
        let leaf = cg.resolve_name("leaf")[0];
        assert!(!reach.contains_key(&cg.resolve_name("unrelated")[0]));
        assert_eq!(cg.path_to(&reach, leaf, &fns), "entry -> mid -> leaf");
    }

    #[test]
    fn qualified_resolution_beats_bare() {
        let src = r#"
            struct A; struct B;
            impl A { fn go(&self) {} }
            impl B { fn go(&self) {} }
            fn f() { A::go(); }
            fn g(x: &B) { x.go(); }
        "#;
        let (fns, cg) = graph(src);
        let f = cg.resolve_name("f")[0];
        assert_eq!(cg.calls[f].len(), 1, "A::go resolves exactly");
        assert_eq!(fns[cg.calls[f][0]].qualified(), "A::go");
        // Method call over-approximates to both impls.
        let g = cg.resolve_name("g")[0];
        assert_eq!(cg.calls[g].len(), 2);
    }

    #[test]
    fn method_calls_only_resolve_to_receiver_fns() {
        let src = r#"
            struct Model;
            impl Model { fn load(path: &str) -> Model { Model } }
            fn f(x: &AtomicUsize) { x.load(Ordering::SeqCst); }
        "#;
        let (_fns, cg) = graph(src);
        let f = cg.resolve_name("f")[0];
        assert!(
            cg.calls[f].is_empty(),
            "`.load()` must not resolve to the associated fn Model::load"
        );
    }

    #[test]
    fn external_type_assoc_fns_are_not_edges() {
        let src = r#"
            fn new() {}
            fn f() { let v = Vec::new(); helper::new(); Self_like(); }
        "#;
        let (fns, cg) = graph(src);
        let f = cg.resolve_name("f")[0];
        // `Vec::new` (external type) produces no edge; `helper::new`
        // (module path) falls back to the free fn `new`.
        assert_eq!(cg.calls[f].len(), 1);
        assert_eq!(fns[cg.calls[f][0]].name, "new");
    }

    #[test]
    fn self_paths_resolve_to_the_impl_type() {
        let src = r#"
            struct S;
            impl S {
                fn a(&self) { Self::b(); }
                fn b() {}
            }
        "#;
        let (fns, cg) = graph(src);
        let a = cg.resolve_name("S::a")[0];
        assert_eq!(cg.calls[a].len(), 1);
        assert_eq!(fns[cg.calls[a][0]].qualified(), "S::b");
    }

    #[test]
    fn stop_fns_cut_traversal() {
        let src = r#"
            fn entry() { arena(); }
            fn arena() { alloc(); }
            fn alloc() {}
        "#;
        let (_fns, cg) = graph(src);
        let roots = cg.resolve_name("entry");
        let stop = cg.resolve_name("arena");
        let reach = cg.reach(&roots, &stop);
        assert!(reach.contains_key(&cg.resolve_name("arena")[0]));
        assert!(!reach.contains_key(&cg.resolve_name("alloc")[0]));
    }

    #[test]
    fn test_code_is_outside_the_graph() {
        let src = r#"
            fn entry() {}
            #[cfg(test)]
            mod tests {
                fn entry() { super::hidden(); }
            }
            fn hidden() {}
        "#;
        let (_fns, cg) = graph(src);
        let roots = cg.resolve_name("entry");
        assert_eq!(roots.len(), 1, "test fn is not a resolution target");
        let reach = cg.reach(&roots, &[]);
        assert_eq!(reach.len(), 1, "no edges out of test code");
    }
}
