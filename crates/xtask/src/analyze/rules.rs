//! The five call-graph-aware rules (`BNS-A001` … `BNS-A005`).
//!
//! Each rule returns raw [`Finding`]s; the driver in `analyze/mod.rs`
//! applies the allowlist afterwards. Rules only report from non-test
//! code — the parser marks `#[cfg(test)]` regions and `tests/` paths,
//! and the call graph refuses to route reachability through test
//! helpers.

use super::callgraph::FnId;
use super::diag::Finding;
use super::ledger::allow_key;
use super::parser::Event;
use super::{AnalyzeConfig, Workspace};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

pub const A001: (&str, &str) = ("BNS-A001", "determinism-reachability");
pub const A002: (&str, &str) = ("BNS-A002", "env-read-registry");
pub const A003: (&str, &str) = ("BNS-A003", "lock-order");
pub const A004: (&str, &str) = ("BNS-A004", "waker-coverage");
pub const A005: (&str, &str) = ("BNS-A005", "allocation-in-hot-path");

/// Builds a rule finding, deriving the allowlist key from the covered
/// source line so a `// bns-allow` comment on that line matches.
fn finding(
    ws: &Workspace,
    rule: (&str, &str),
    file_idx: usize,
    line: usize,
    message: String,
    note: Option<String>,
) -> Finding {
    let sf = &ws.files[file_idx];
    let covered = sf.text.lines().nth(line - 1).map(str::trim).unwrap_or("");
    Finding {
        rule: rule.0.into(),
        name: rule.1.into(),
        file: sf.rel.clone(),
        line,
        message,
        note,
        key: allow_key(rule.0, covered, ""),
        blessable: false,
    }
}

/// Occurrences of a significant-token sequence inside `range`; returns
/// the index of each match's first token.
fn find_seq(sf: &super::parser::SourceFile, range: &Range<usize>, pat: &[&str]) -> Vec<usize> {
    let mut out = Vec::new();
    if range.len() < pat.len() {
        return out;
    }
    for i in range.start..=range.end - pat.len() {
        if pat.iter().enumerate().all(|(k, p)| sf.sig_is(i + k, p)) {
            out.push(i);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// BNS-A001: determinism-reachability
// ---------------------------------------------------------------------------

/// Sources of run-to-run nondeterminism: wall-clock reads, randomized
/// hash containers, and OS entropy. Banned in every function reachable
/// from a kernel entry point — the repro contract is bitwise, so the
/// whole call closure must be deterministic, not just the kernel file.
const NONDETERMINISM: &[(&[&str], &str)] = &[
    (&["Instant", ":", ":", "now"], "Instant::now"),
    (&["SystemTime"], "SystemTime"),
    (&["HashMap"], "HashMap"),
    (&["HashSet"], "HashSet"),
    (&["RandomState"], "RandomState"),
    (&["OsRng"], "OsRng"),
    (&["thread_rng"], "thread_rng"),
    (&["from_entropy"], "from_entropy"),
];

pub fn determinism(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<Finding> {
    let mut roots: Vec<FnId> = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !f.is_test && cfg.kernel_files.iter().any(|k| ws.files[f.file].rel == *k) {
            roots.push(id);
        }
    }
    let reach = ws.graph.reach(&roots, &[]);
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (&id, _) in reach.iter() {
        let f = &ws.fns[id];
        if f.is_test {
            continue;
        }
        let sf = &ws.files[f.file];
        for (pat, label) in NONDETERMINISM {
            for tok in find_seq(sf, &f.body, pat) {
                let line = sf.sig_line(tok);
                if !seen.insert((f.file, line, *label)) {
                    continue;
                }
                out.push(finding(
                    ws,
                    A001,
                    f.file,
                    line,
                    format!(
                        "`{label}` is reachable from a deterministic kernel entry point; \
                         everything a kernel calls must be bitwise reproducible"
                    ),
                    Some(format!(
                        "example path: {}",
                        ws.graph.path_to(&reach, id, &ws.fns)
                    )),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// BNS-A002: env-read-registry
// ---------------------------------------------------------------------------

/// One observed `std::env::var("BNS_*")` read.
#[derive(Debug)]
pub struct EnvSite {
    pub var: String,
    pub file_idx: usize,
    pub line: usize,
}

/// Collects every `env::var` read of a `BNS_*` variable, resolving
/// const names (`ENV_WORKERS` -> `BNS_WORKERS`) across the workspace.
pub fn env_sites(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<EnvSite> {
    // Pass 1: `const NAME: &str = "BNS_…";` declarations, workspace-wide.
    let mut consts: BTreeMap<String, String> = BTreeMap::new();
    for sf in &ws.files {
        let n = sf.sig.len();
        for i in 0..n {
            if !sf.sig_is(i, "const") || !sf.sig_is_ident(i + 1) {
                continue;
            }
            let name = sf.sig_text(i + 1).to_string();
            // Scan a short window for the value, stopping at `;`.
            for j in i + 2..(i + 12).min(n) {
                if sf.sig_is(j, ";") {
                    break;
                }
                if let Some(v) = str_value(sf, j) {
                    if v.starts_with(&cfg.env_prefix) {
                        consts.insert(name.clone(), v);
                    }
                    break;
                }
            }
        }
    }
    // Pass 2: `env :: var (` call sites in non-test code.
    let mut out = Vec::new();
    for f in &ws.fns {
        if f.is_test {
            continue;
        }
        let sf = &ws.files[f.file];
        for tok in find_seq(sf, &f.body, &["env", ":", ":", "var", "("]) {
            let arg = tok + 5;
            let var = match str_value(sf, arg) {
                Some(v) => {
                    if v.starts_with(&cfg.env_prefix) {
                        Some(v)
                    } else {
                        None
                    }
                }
                None if sf.sig_is_ident(arg) => consts.get(sf.sig_text(arg)).cloned(),
                None => None,
            };
            if let Some(var) = var {
                out.push(EnvSite {
                    var,
                    file_idx: f.file,
                    line: sf.sig_line(tok),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.var, a.file_idx, a.line).cmp(&(&b.var, b.file_idx, b.line)));
    out
}

/// The unquoted value of significant token `i` when it is a plain
/// string literal.
fn str_value(sf: &super::parser::SourceFile, i: usize) -> Option<String> {
    if i >= sf.sig.len() {
        return None;
    }
    let tok = sf.sig_tok(i);
    if tok.kind != super::lexer::TokenKind::Str {
        return None;
    }
    let t = tok.text(&sf.text);
    Some(t.trim_matches('"').to_string())
}

/// `(var, file) -> site count` as recorded in ENV_REGISTRY.md.
pub type EnvRegistry = BTreeMap<(String, String), usize>;

pub fn parse_env_registry(text: &str) -> EnvRegistry {
    let mut out = EnvRegistry::new();
    for line in text.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 || cells[0] == "Variable" || cells[0].starts_with("---") {
            continue;
        }
        let var = cells[0].trim_matches('`').to_string();
        let file = cells[1].trim_matches('`').to_string();
        let Ok(count) = cells[2].parse::<usize>() else {
            continue;
        };
        *out.entry((var, file)).or_insert(0) += count;
    }
    out
}

pub fn render_env_registry(ws: &Workspace, sites: &[EnvSite]) -> String {
    let mut counts = EnvRegistry::new();
    for s in sites {
        *counts
            .entry((s.var.clone(), ws.files[s.file_idx].rel.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from("# Environment Variable Registry\n\n");
    out.push_str(
        "Every `std::env::var(\"BNS_*\")` read in non-test code, as found by\n\
         `cargo xtask analyze` (rule BNS-A002). Adding, moving, or removing a read\n\
         fails the analyzer until this file is regenerated with\n\
         `cargo xtask analyze --bless` — and every variable listed here must be\n\
         documented in the README's configuration table.\n\
         Generated file — do not edit rows by hand.\n\n",
    );
    out.push_str("| Variable | File | Sites |\n");
    out.push_str("|---|---|---|\n");
    for ((var, file), count) in &counts {
        out.push_str(&format!("| `{var}` | `{file}` | {count} |\n"));
    }
    out
}

pub fn env_registry(
    ws: &Workspace,
    cfg: &AnalyzeConfig,
    sites: &[EnvSite],
    registry: &EnvRegistry,
    readme: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut counts: BTreeMap<(String, String), (usize, usize, usize)> = BTreeMap::new();
    for s in sites {
        let e = counts
            .entry((s.var.clone(), ws.files[s.file_idx].rel.clone()))
            .or_insert((0, s.file_idx, s.line));
        e.0 += 1;
    }
    for ((var, file), (count, file_idx, line)) in &counts {
        match registry.get(&(var.clone(), file.clone())) {
            Some(&n) if n == *count => {}
            Some(&n) => out.push(Finding {
                blessable: true,
                ..finding(
                    ws,
                    A002,
                    *file_idx,
                    *line,
                    format!(
                        "`{var}` is read {count} time(s) here but ENV_REGISTRY.md records \
                         {n}; review and run `cargo xtask analyze --bless`"
                    ),
                    None,
                )
            }),
            None => out.push(Finding {
                blessable: true,
                ..finding(
                    ws,
                    A002,
                    *file_idx,
                    *line,
                    format!(
                        "env read of `{var}` is not recorded in ENV_REGISTRY.md; review \
                         and run `cargo xtask analyze --bless`"
                    ),
                    None,
                )
            }),
        }
    }
    for (var, file) in registry.keys() {
        if !counts.contains_key(&(var.clone(), file.clone())) {
            out.push(Finding {
                rule: A002.0.into(),
                name: A002.1.into(),
                file: "ENV_REGISTRY.md".into(),
                line: 1,
                message: format!(
                    "registry row ({var}, {file}) matches no env read; the code \
                     changed — re-bless after review"
                ),
                note: None,
                key: 0,
                blessable: true,
            });
        }
    }
    // Every live variable must appear (backticked) in the README's
    // configuration table. Not blessable: documentation is written by
    // hand.
    if let Some(readme) = readme {
        let mut seen_vars = BTreeSet::new();
        for s in sites {
            if !seen_vars.insert(s.var.clone()) {
                continue;
            }
            if !readme.contains(&format!("`{}`", s.var)) {
                out.push(finding(
                    ws,
                    A002,
                    s.file_idx,
                    s.line,
                    format!(
                        "`{}` is read here but not documented in {}'s configuration \
                         table",
                        s.var,
                        cfg.readme_display()
                    ),
                    None,
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// BNS-A003: lock-order
// ---------------------------------------------------------------------------

pub fn lock_order(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<Finding> {
    let n = ws.fns.len();
    // Direct lock classes per function.
    let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for ev in &f.events {
            if let Event::Lock { class, .. } = ev {
                if class != "<unknown>" && class != "self" {
                    direct[id].insert(class.clone());
                }
            }
        }
    }
    // Transitive closure over the call graph (fixpoint; the graph is
    // small and the class sets tiny).
    let mut trans = direct.clone();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut add: Vec<String> = Vec::new();
            for &c in &ws.graph.calls[id] {
                for cls in &trans[c] {
                    if !trans[id].contains(cls) {
                        add.push(cls.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[id].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    let pos = |c: &str| cfg.lock_order.iter().position(|x| x == c);
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    let mut undeclared = BTreeSet::new();
    for f in ws.fns.iter() {
        if f.is_test {
            continue;
        }
        let rel = &ws.files[f.file].rel;
        if !cfg.lock_scope.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        let sf = &ws.files[f.file];
        // Replay the body: a stack of held guards (class, brace depth,
        // binding name).
        let mut held: Vec<(String, usize, Option<String>)> = Vec::new();
        let mut pair = |outer: &str,
                        inner: &str,
                        tok: usize,
                        via: Option<&str>,
                        out: &mut Vec<Finding>,
                        undeclared: &mut BTreeSet<(usize, String)>| {
            let line = sf.sig_line(tok);
            if !seen.insert((f.file, line, outer.to_string(), inner.to_string())) {
                return;
            }
            let note = via.map(|v| format!("acquired transitively via `{v}`"));
            if outer == inner {
                out.push(finding(
                    ws,
                    A003,
                    f.file,
                    line,
                    format!(
                        "lock class `{outer}` acquired while a `{outer}` guard is \
                         already held (self-deadlock risk)"
                    ),
                    note,
                ));
                return;
            }
            match (pos(outer), pos(inner)) {
                (Some(po), Some(pi)) if po > pi => out.push(finding(
                    ws,
                    A003,
                    f.file,
                    line,
                    format!(
                        "lock `{inner}` acquired while holding `{outer}` inverts the \
                         declared order ({})",
                        cfg.lock_order.join(" -> ")
                    ),
                    note,
                )),
                (Some(_), Some(_)) => {}
                _ => {
                    for c in [outer, inner] {
                        if pos(c).is_none() && undeclared.insert((f.file, c.to_string())) {
                            out.push(finding(
                                ws,
                                A003,
                                f.file,
                                line,
                                format!(
                                    "lock class `{c}` participates in nesting but is not in \
                                     the declared lock order ({}); declare its rank",
                                    cfg.lock_order.join(" -> ")
                                ),
                                note.clone(),
                            ));
                        }
                    }
                }
            }
        };
        for ev in &f.events {
            match ev {
                Event::Lock {
                    class,
                    guard,
                    depth,
                    tok,
                } => {
                    if class == "<unknown>" || class == "self" {
                        continue;
                    }
                    for (h, _, _) in held.clone() {
                        pair(&h, class, *tok, None, &mut out, &mut undeclared);
                    }
                    if guard.is_some() {
                        held.push((class.clone(), *depth, guard.clone()));
                    }
                }
                Event::Drop { name, .. } => {
                    held.retain(|(_, _, g)| g.as_deref() != Some(name.as_str()));
                }
                Event::Close { depth } => {
                    held.retain(|(_, d, _)| d < depth);
                }
                Event::Call { tok, .. } | Event::MethodCall { tok, .. } => {
                    if held.is_empty() {
                        continue;
                    }
                    for c in ws.graph.resolve_event(ev, f.impl_type.as_deref()) {
                        for cls in trans[c].iter() {
                            for (h, _, _) in held.clone() {
                                pair(
                                    &h,
                                    cls,
                                    *tok,
                                    Some(&ws.fns[c].qualified()),
                                    &mut out,
                                    &mut undeclared,
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// BNS-A004: waker-coverage
// ---------------------------------------------------------------------------

pub fn waker_coverage(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test || f.name != "step" || f.trait_name.as_deref() != Some(&cfg.task_trait) {
            continue;
        }
        let Some(ty) = f.impl_type.clone() else {
            continue;
        };
        // Does step() transitively poll a mailbox?
        let reach = ws.graph.reach(&[id], &[]);
        let mut recv_site: Option<(usize, usize, String)> = None;
        for (&rid, _) in reach.iter() {
            let g = &ws.fns[rid];
            for ev in &g.events {
                let name = match ev {
                    Event::Call { segments, tok } => segments.last().map(|s| (s.clone(), *tok)),
                    Event::MethodCall { name, tok } => Some((name.clone(), *tok)),
                    _ => None,
                };
                let Some((name, tok)) = name else { continue };
                if cfg.recv_fns.iter().any(|r| *r == name) {
                    let line = ws.files[g.file].sig_line(tok);
                    let candidate = (g.file, line, ws.graph.path_to(&reach, rid, &ws.fns));
                    let better = match &recv_site {
                        None => true,
                        Some((bf, bl, _)) => {
                            (&ws.files[g.file].rel, line) < (&ws.files[*bf].rel, *bl)
                        }
                    };
                    if better {
                        recv_site = Some(candidate);
                    }
                }
            }
        }
        let Some((rfile, rline, rpath)) = recv_site else {
            continue;
        };
        // Then bind() must register a waker, or a parked task is never
        // woken by a late message (lost wakeup).
        let bind: Vec<FnId> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                !b.is_test && b.name == "bind" && b.impl_type.as_deref() == Some(ty.as_str())
            })
            .map(|(i, _)| i)
            .collect();
        if bind.is_empty() {
            out.push(finding(
                ws,
                A004,
                f.file,
                f.line,
                format!(
                    "`{ty}::step` can block on a mailbox receive but `{ty}` has no \
                     `bind` registering a waker; a parked task would never be woken"
                ),
                Some(format!("receive reached via: {rpath}")),
            ));
            continue;
        }
        let breach = ws.graph.reach(&bind, &[]);
        let registers = breach.keys().any(|&bid| {
            ws.fns[bid].events.iter().any(|ev| {
                let name = match ev {
                    Event::Call { segments, .. } => segments.last().cloned(),
                    Event::MethodCall { name, .. } => Some(name.clone()),
                    _ => None,
                };
                name.is_some_and(|n| cfg.waker_fns.iter().any(|w| *w == n))
            })
        });
        if !registers {
            out.push(finding(
                ws,
                A004,
                rfile,
                rline,
                format!(
                    "`{ty}::step` polls a mailbox here but `{ty}::bind` never calls \
                     {}; a task parked on an empty mailbox is never woken when the \
                     message lands",
                    cfg.waker_fns.join("/")
                ),
                Some(format!("receive reached via: {rpath}")),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// BNS-A005: allocation-in-hot-path
// ---------------------------------------------------------------------------

/// `Type::new`-style allocating constructors.
const ALLOC_PATHS: &[&str] = &["Vec", "Box", "String", "Arc", "Rc", "VecDeque", "BTreeMap"];
/// Allocating method calls.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];
/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

pub fn hot_alloc(ws: &Workspace, cfg: &AnalyzeConfig) -> Vec<Finding> {
    let roots: Vec<FnId> = cfg
        .hot_entries
        .iter()
        .flat_map(|e| ws.graph.resolve_name(e))
        .collect();
    let stops: Vec<FnId> = cfg
        .arena_allow
        .iter()
        .flat_map(|e| ws.graph.resolve_name(e))
        .collect();
    let reach = ws.graph.reach(&roots, &stops);
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for (&id, _) in reach.iter() {
        let f = &ws.fns[id];
        if f.is_test || stops.contains(&id) {
            continue;
        }
        let sf = &ws.files[f.file];
        let mut hit = |what: String, tok: usize, out: &mut Vec<Finding>| {
            let line = sf.sig_line(tok);
            if !seen.insert((f.file, line, what.clone())) {
                return;
            }
            out.push(finding(
                ws,
                A005,
                f.file,
                line,
                format!(
                    "`{what}` allocates in the per-epoch exchange hot path; recycle \
                     through ExchangeArena or ledger the steady-state exception"
                ),
                Some(format!(
                    "example path: {}",
                    ws.graph.path_to(&reach, id, &ws.fns)
                )),
            ));
        };
        for ev in &f.events {
            match ev {
                Event::Macro { name, tok } if ALLOC_MACROS.contains(&name.as_str()) => {
                    hit(format!("{name}!"), *tok, &mut out);
                }
                Event::MethodCall { name, tok } if ALLOC_METHODS.contains(&name.as_str()) => {
                    hit(format!(".{name}()"), *tok, &mut out);
                }
                Event::Call { segments, tok } if segments.len() >= 2 => {
                    let last = segments.last().unwrap().as_str();
                    let ty = segments[segments.len() - 2].as_str();
                    if (last == "new" || last == "with_capacity") && ALLOC_PATHS.contains(&ty) {
                        hit(format!("{ty}::{last}"), *tok, &mut out);
                    }
                }
                _ => {}
            }
        }
    }
    out
}
