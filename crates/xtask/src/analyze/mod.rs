//! `cargo xtask analyze` — AST-level determinism & concurrency lints
//! with call-graph reachability.
//!
//! Where `cargo xtask audit` is a line-oriented scanner (SAFETY
//! comments, spawn confinement, per-file keyword bans), `analyze`
//! parses every checked-in source into a token stream and a lightweight
//! item/expression AST, builds an intra-workspace call graph, and runs
//! five reachability-aware rules:
//!
//! * **BNS-A001 determinism-reachability** — no wall-clock reads, hash
//!   containers, or OS entropy anywhere in the call closure of the
//!   deterministic kernels (not just in the kernel files themselves).
//! * **BNS-A002 env-read-registry** — every `std::env::var("BNS_*")`
//!   read must be recorded in `ENV_REGISTRY.md` and documented in the
//!   README's configuration table.
//! * **BNS-A003 lock-order** — nested mutex acquisition in the
//!   scheduler/transport/engine must follow one declared order.
//! * **BNS-A004 waker-coverage** — a cooperative task whose `step` can
//!   park on an empty mailbox must register a waker in `bind`.
//! * **BNS-A005 allocation-in-hot-path** — the per-epoch overlapped
//!   exchange allocates only through the `ExchangeArena` recycler.
//!
//! Resolution is name-based and over-approximate (see `callgraph`);
//! intentional violations carry a `// bns-allow(rule): reason` comment
//! registered in the hash-keyed `ANALYZE_LEDGER.md`
//! (`cargo xtask analyze --bless`), mirroring `UNSAFE_LEDGER.md`.

pub mod callgraph;
pub mod diag;
pub mod ledger;
pub mod lexer;
pub mod parser;
pub mod rules;

use callgraph::CallGraph;
use diag::Finding;
use ledger::{collect_allows, Allow};
use parser::{parse_functions, Function, SourceFile};
use std::path::{Path, PathBuf};

/// What to analyze and where the policy boundaries are.
pub struct AnalyzeConfig {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Relative path prefixes excluded from the walk.
    pub skip: Vec<String>,
    /// Allowlist ledger (normally `<root>/ANALYZE_LEDGER.md`).
    pub ledger_path: PathBuf,
    /// Env-read registry (normally `<root>/ENV_REGISTRY.md`).
    pub env_registry_path: PathBuf,
    /// README whose configuration table must document every `BNS_*`
    /// variable (`None` disables the documentation check, e.g. in
    /// fixture runs).
    pub readme_path: Option<PathBuf>,
    /// BNS-A001 entry points: every non-test fn defined in these files.
    pub kernel_files: Vec<String>,
    /// BNS-A005 entry points (bare or `Type::method` names).
    pub hot_entries: Vec<String>,
    /// BNS-A005 traversal cut: the arena recycler (and other functions
    /// that own their buffers by design) — visited but not descended
    /// into, and not scanned.
    pub arena_allow: Vec<String>,
    /// BNS-A003 scope: path prefixes whose functions are replayed.
    pub lock_scope: Vec<String>,
    /// BNS-A003 declared lock order, outermost first.
    pub lock_order: Vec<String>,
    /// BNS-A002 variable prefix.
    pub env_prefix: String,
    /// BNS-A004: the cooperative-task trait name.
    pub task_trait: String,
    /// BNS-A004: mailbox receive functions that can observe "empty".
    pub recv_fns: Vec<String>,
    /// BNS-A004: waker-registration functions.
    pub waker_fns: Vec<String>,
}

impl AnalyzeConfig {
    /// The real workspace policy.
    pub fn for_repo(root: &Path) -> Self {
        AnalyzeConfig {
            root: root.to_path_buf(),
            skip: vec![
                "target".into(),
                ".git".into(),
                // The analyzer does not analyze itself or the vendored
                // test-only shims; its own hygiene is covered by its
                // unit tests and the workspace clippy gate.
                "crates/xtask".into(),
                "vendor".into(),
            ],
            ledger_path: root.join("ANALYZE_LEDGER.md"),
            env_registry_path: root.join("ENV_REGISTRY.md"),
            readme_path: Some(root.join("README.md")),
            // Same kernel set the audit enforces line-level bans on;
            // analyze extends the ban to everything they reach.
            kernel_files: vec![
                "crates/nn/src/aggregate.rs".into(),
                "crates/nn/src/activation.rs".into(),
                "crates/nn/src/optim.rs".into(),
                "crates/tensor/src/matrix.rs".into(),
                "crates/tensor/src/simd.rs".into(),
                "crates/tensor/src/simd/codec.rs".into(),
                "crates/core/src/exchange.rs".into(),
                "crates/serve/src/shard.rs".into(),
                "crates/serve/src/cache.rs".into(),
            ],
            // The per-epoch overlapped exchange: the send side and the
            // poll-driven receive ops that run inside the scheduler
            // loop every epoch.
            hot_entries: vec![
                "send_boundary_rows".into(),
                "recv_boundary_blocks".into(),
                "swap_boundary_stale".into(),
                "SelectionOp::poll".into(),
                "BoundaryRecvOp::begin".into(),
                "BoundaryRecvOp::poll".into(),
                "GradRecvOp::begin".into(),
                "GradRecvOp::poll".into(),
                "GradRecvOp::finish".into(),
            ],
            arena_allow: vec![
                // The arena recycler is the sanctioned allocator: it
                // reuses steady-state buffers and meters what it must
                // allocate.
                "ExchangeArena::take_buf".into(),
                "ExchangeArena::take_u8".into(),
                "ExchangeArena::recycle".into(),
                "ExchangeArena::recycle_u8".into(),
                "ExchangeArena::reset_h_bd".into(),
                // The transport owns envelope buffers: messages are
                // owned values by design, and its costs are metered by
                // TrafficStats rather than banned.
                "RankComm::send".into(),
                "RankComm::try_recv".into(),
                "RankComm::try_recv_any".into(),
                "RankComm::recv".into(),
                "RankComm::recv_any".into(),
                // Telemetry is feature-gated and amortized; its
                // registry is not part of the exchange data path.
                "counter_add".into(),
                "gauge_set".into(),
                "series_push".into(),
            ],
            lock_scope: vec![
                "crates/comm/src/".into(),
                "crates/runtime/src/".into(),
                "crates/core/src/".into(),
            ],
            // Outermost first. `slots` (a rank task slot, held across
            // `step()`) must be taken before anything the step body or
            // the scheduler touches — the serve shard/job state, the
            // engine output slot, the run queue, and waker slots; the
            // telemetry series lock is the innermost leaf.
            lock_order: vec![
                "slots".into(),
                "shards".into(),
                "completed".into(),
                "state".into(),
                "out".into(),
                "queue".into(),
                "waker".into(),
                "panic".into(),
                "counters".into(),
                "gauges".into(),
                "series".into(),
            ],
            env_prefix: "BNS_".into(),
            task_trait: "Task".into(),
            recv_fns: vec![
                "try_recv".into(),
                "try_recv_any".into(),
                "recv_any".into(),
                "wait_message".into(),
            ],
            waker_fns: vec!["set_waker".into()],
        }
    }

    /// Display name for the README in diagnostics.
    pub fn readme_display(&self) -> String {
        self.readme_path
            .as_ref()
            .and_then(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "README.md".into())
    }
}

/// The parsed workspace: files, functions, and the call graph over
/// them.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<Function>,
    pub graph: CallGraph,
}

impl Workspace {
    /// Parses every `.rs` file under the config root.
    pub fn load(cfg: &AnalyzeConfig) -> std::io::Result<Self> {
        let paths = crate::walk_rust_files(&cfg.root, &cfg.skip)?;
        let mut files = Vec::with_capacity(paths.len());
        for p in &paths {
            let text = std::fs::read_to_string(p)?;
            let rel = crate::rel_path(&cfg.root, p);
            files.push(SourceFile::parse(rel, text));
        }
        Ok(Self::from_files(files))
    }

    /// Builds the function list and call graph from parsed files
    /// (exposed for fixture tests that synthesize sources).
    pub fn from_files(files: Vec<SourceFile>) -> Self {
        let mut fns = Vec::new();
        for (idx, sf) in files.iter().enumerate() {
            let path_is_test = sf.rel.contains("/tests/") || sf.rel.contains("/benches/");
            fns.extend(parse_functions(sf, idx, path_is_test));
        }
        let graph = CallGraph::build(&fns);
        Workspace { files, fns, graph }
    }
}

/// Everything one analyze pass produces.
pub struct AnalyzeReport {
    /// Surviving findings (rule violations not allowlisted, plus
    /// allowlist/registry bookkeeping), sorted by file/line/rule.
    pub findings: Vec<Finding>,
    /// Allows that suppressed at least one finding — the rows `--bless`
    /// writes to the ledger.
    pub used_allows: Vec<Allow>,
    /// Rendered ENV_REGISTRY.md contents for the observed sites — what
    /// `--bless` writes.
    pub env_registry: String,
    pub files_scanned: usize,
    pub fns_parsed: usize,
}

/// Runs all rules, applies the allowlist, and cross-checks both
/// generated files.
pub fn analyze(cfg: &AnalyzeConfig) -> std::io::Result<AnalyzeReport> {
    let ws = Workspace::load(cfg)?;

    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rules::determinism(&ws, cfg));
    let sites = rules::env_sites(&ws, cfg);
    let registry = match std::fs::read_to_string(&cfg.env_registry_path) {
        Ok(s) => rules::parse_env_registry(&s),
        Err(_) => rules::EnvRegistry::new(),
    };
    let readme = cfg
        .readme_path
        .as_ref()
        .and_then(|p| std::fs::read_to_string(p).ok());
    raw.extend(rules::env_registry(
        &ws,
        cfg,
        &sites,
        &registry,
        readme.as_deref(),
    ));
    raw.extend(rules::lock_order(&ws, cfg));
    raw.extend(rules::waker_coverage(&ws, cfg));
    raw.extend(rules::hot_alloc(&ws, cfg));

    let mut allows: Vec<Allow> = Vec::new();
    for sf in &ws.files {
        allows.extend(collect_allows(sf));
    }
    let ledger_rows = match std::fs::read_to_string(&cfg.ledger_path) {
        Ok(s) => ledger::parse_allow_ledger(&s),
        Err(_) => ledger::AllowLedger::new(),
    };
    let mut outcome = ledger::apply_allows(raw, &allows, &ledger_rows);
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    Ok(AnalyzeReport {
        findings: outcome.findings,
        used_allows: outcome.used,
        env_registry: rules::render_env_registry(&ws, &sites),
        files_scanned: ws.files.len(),
        fns_parsed: ws.fns.len(),
    })
}

/// Regenerates `ANALYZE_LEDGER.md` and `ENV_REGISTRY.md`, refusing
/// while non-bookkeeping findings remain — a `--bless` must never paper
/// over an unallowed violation or a missing README row.
pub fn bless(cfg: &AnalyzeConfig) -> std::io::Result<Result<usize, Vec<Finding>>> {
    let report = analyze(cfg)?;
    let blocking: Vec<Finding> = report
        .findings
        .into_iter()
        .filter(|f| !f.blessable)
        .collect();
    if !blocking.is_empty() {
        return Ok(Err(blocking));
    }
    std::fs::write(
        &cfg.ledger_path,
        ledger::render_allow_ledger(&report.used_allows),
    )?;
    std::fs::write(&cfg.env_registry_path, &report.env_registry)?;
    Ok(Ok(report.used_allows.len()))
}
