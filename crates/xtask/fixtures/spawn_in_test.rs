//! Fixture: thread spawning inside a `#[cfg(test)]` module — exempt
//! from rule 3.

pub fn fine() {}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_threads_are_allowed_in_tests() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
