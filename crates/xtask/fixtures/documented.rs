//! Fixture: a properly documented unsafe site. Passes rule 1 but must
//! be registered in the ledger (rule 2).

// SAFETY: the caller guarantees `p` is valid for writes of one byte.
pub unsafe fn zero(p: *mut u8) {
    *p = 0;
}
