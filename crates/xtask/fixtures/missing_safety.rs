//! Fixture: an unsafe block with no SAFETY comment (rule 1 violation).

pub fn zero(p: *mut u8) {
    unsafe {
        *p = 0;
    }
}
