// Seeded violation for tests/selftest.rs: a `mul_add` in a file the
// fixture config designates as a kernel (rule 5, fma-in-kernel).

pub fn fused(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}
