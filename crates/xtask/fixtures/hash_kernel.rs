//! Fixture: hash collections in a file configured as a kernel
//! (rule 4 violation when listed in `AuditConfig::kernel_files`).

use std::collections::HashMap;

pub fn degree_sum(degrees: &HashMap<usize, usize>) -> usize {
    degrees.values().sum()
}
