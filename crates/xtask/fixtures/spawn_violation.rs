//! Fixture: thread spawning outside the allowlist (rule 3 violation).

pub fn leak_a_thread() {
    std::thread::spawn(|| {});
}
