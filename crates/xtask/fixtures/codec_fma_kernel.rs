// Seeded violation for tests/selftest.rs: FMA in a file the fixture
// config designates as a codec kernel — proving the kernel bans extend
// to the quantization codecs (rule 5, fma-in-kernel). The dequant
// affine `zp + q * scale` is exactly the shape that tempts an FMA.

pub fn fused_dequant(q: f32, scale: f32, zp: f32) -> f32 {
    q.mul_add(scale, zp)
}
