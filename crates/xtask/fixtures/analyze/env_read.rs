//! BNS-A002 fixture: one literal read, one through a const; the
//! fixture README documents only the `BNS_FIXTURE_GAIN` variable.

const ENV_GAIN: &str = "BNS_FIXTURE_GAIN";

pub fn workers() -> usize {
    std::env::var("BNS_FIXTURE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn gain() -> f32 {
    std::env::var(ENV_GAIN)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}
