//! BNS-A003 fixture: the declared order is `slots -> queue`, so every
//! `queue`-then-`slots` nesting here is an inversion.

pub struct Sched {
    slots: std::sync::Mutex<Vec<u32>>,
    queue: std::sync::Mutex<Vec<u32>>,
}

impl Sched {
    pub fn drain(&self) {
        let q = self.queue.lock().unwrap();
        let s = self.slots.lock().unwrap();
        drop(s);
        drop(q);
    }

    pub fn relock(&self) {
        let a = self.queue.lock().unwrap();
        let b = self.queue.lock().unwrap();
        drop(b);
        drop(a);
    }

    pub fn indirect(&self) {
        let q = self.queue.lock().unwrap();
        self.touch_slots();
        drop(q);
    }

    fn touch_slots(&self) {
        let s = self.slots.lock().unwrap();
        drop(s);
    }
}
