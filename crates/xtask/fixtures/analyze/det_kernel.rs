//! BNS-A001 fixture: the kernel entry reaches nondeterminism through a
//! helper in a different file.

pub fn kernel_entry(x: f32) -> f32 {
    scale(x)
}
