//! BNS-A005 fixture: `hot_entry` reaches three allocation shapes via
//! `stage`; the arena `take` is the sanctioned cut, so its own
//! allocation must NOT be reported.

pub struct Arena {
    buf: Vec<f32>,
}

impl Arena {
    pub fn take(&mut self) -> Vec<f32> {
        let grown = self.buf.to_vec();
        grown
    }
}

pub fn hot_entry(arena: &mut Arena) -> Vec<f32> {
    let mut out = arena.take();
    out.extend_from_slice(&stage());
    out
}

fn stage() -> Vec<f32> {
    let mut acc: Vec<f32> = Vec::new();
    acc.extend_from_slice(&vec![0.0f32; 4]);
    acc.to_vec()
}
