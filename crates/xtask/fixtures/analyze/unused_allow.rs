//! BNS-A000 fixture: an allow that suppresses nothing must be deleted,
//! not blessed.

pub fn quiet() -> u32 {
    // bns-allow(BNS-A005): stale exception kept around by mistake
    7
}
