//! BNS-A000/A005 fixture: an allowlisted hot-path allocation; the
//! bless cycle registers it in the ledger.

pub fn hot_entry_allowed() -> Vec<u8> {
    // bns-allow(BNS-A005): fixture exception with a written reason
    let staged = vec![0u8; 8];
    staged
}
