//! Reached from `det_kernel.rs`; both sites here must be reported.

pub fn scale(x: f32) -> f32 {
    let t = std::time::Instant::now();
    let mut m = std::collections::HashMap::new();
    m.insert(0u8, x);
    let _ = t.elapsed();
    x
}
