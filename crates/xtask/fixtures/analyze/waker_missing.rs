//! BNS-A004 fixture: `Bad::step` parks on `try_recv` but `Bad::bind`
//! never registers a waker; `Good` does and must stay silent.

pub struct Mailbox;

impl Mailbox {
    pub fn try_recv(&self) -> Option<u32> {
        None
    }

    pub fn set_waker(&self, wake: fn()) {
        let _ = wake;
    }
}

pub struct Bad {
    mbox: Mailbox,
}

impl Task for Bad {
    fn step(&mut self) {
        let _ = self.mbox.try_recv();
    }

    fn bind(&mut self) {}
}

pub struct Good {
    mbox: Mailbox,
}

impl Task for Good {
    fn step(&mut self) {
        let _ = self.mbox.try_recv();
    }

    fn bind(&mut self) {
        self.mbox.set_waker(|| {});
    }
}
