//! The analyzer analyzing itself: every rule must catch its seeded
//! fixture under `fixtures/analyze/`, the allow/bless cycle must
//! round-trip and detect tampering, and the real workspace must be
//! clean.

use std::path::{Path, PathBuf};
use xtask::analyze::{analyze, bless, AnalyzeConfig};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("analyze")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap()
        .to_path_buf()
}

/// Config over the analyze fixtures with throwaway generated-file
/// paths; rule policy mirrors the fixture sources (`det_kernel.rs` is
/// the kernel, `hot_entry*` the hot path, `slots -> queue` the order).
fn fixture_cfg(name: &str) -> AnalyzeConfig {
    let root = fixtures_root();
    let tmp = |suffix: &str| {
        std::env::temp_dir().join(format!(
            "xtask-analyze-{}-{name}-{suffix}",
            std::process::id()
        ))
    };
    AnalyzeConfig {
        ledger_path: tmp("ledger.md"),
        env_registry_path: tmp("env.md"),
        readme_path: Some(root.join("README_FIXTURE.md")),
        root,
        skip: vec![],
        kernel_files: vec!["det_kernel.rs".into()],
        hot_entries: vec!["hot_entry".into(), "hot_entry_allowed".into()],
        arena_allow: vec!["Arena::take".into()],
        lock_scope: vec!["lock_invert.rs".into()],
        lock_order: vec!["slots".into(), "queue".into()],
        env_prefix: "BNS_".into(),
        task_trait: "Task".into(),
        recv_fns: vec!["try_recv".into()],
        waker_fns: vec!["set_waker".into()],
    }
}

fn rules_for(report: &xtask::analyze::AnalyzeReport, file: &str) -> Vec<(String, usize)> {
    report
        .findings
        .iter()
        .filter(|f| f.file == file)
        .map(|f| (f.rule.clone(), f.line))
        .collect()
}

#[test]
fn every_rule_catches_its_seeded_fixture() {
    let cfg = fixture_cfg("catch");
    let report = analyze(&cfg).unwrap();

    // BNS-A001 fires in the helper file, not just the kernel file: the
    // ban follows the call graph.
    assert_eq!(
        rules_for(&report, "det_helper.rs"),
        vec![("BNS-A001".into(), 4), ("BNS-A001".into(), 5)],
        "Instant::now and HashMap reachable from kernel_entry"
    );

    // BNS-A002: two unregistered reads (one literal, one via a const)
    // plus the undocumented-in-README finding for the literal one.
    let env = rules_for(&report, "env_read.rs");
    assert_eq!(env.len(), 3, "{env:?}");
    assert!(env.iter().all(|(r, _)| r == "BNS-A002"));
    assert_eq!(
        env.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
        vec![7, 7, 14],
        "literal read flagged twice (registry+README), const read once"
    );

    // BNS-A003: direct inversion, self-deadlock, transitive inversion.
    assert_eq!(
        rules_for(&report, "lock_invert.rs"),
        vec![
            ("BNS-A003".into(), 12),
            ("BNS-A003".into(), 19),
            ("BNS-A003".into(), 26),
        ]
    );

    // BNS-A004: Bad's recv site flagged; Good (which registers a
    // waker in bind) stays silent.
    let waker = rules_for(&report, "waker_missing.rs");
    assert_eq!(waker, vec![("BNS-A004".into(), 22)]);

    // BNS-A005: all three allocation shapes in `stage`, and nothing
    // from inside the sanctioned `Arena::take` cut (line 11).
    assert_eq!(
        rules_for(&report, "hot_alloc.rs"),
        vec![
            ("BNS-A005".into(), 23),
            ("BNS-A005".into(), 24),
            ("BNS-A005".into(), 25),
        ]
    );

    // BNS-A000: the used-but-unledgered allow is blessable; the unused
    // allow is not (it must be deleted, not blessed). Both meta
    // findings anchor at the allow comment itself.
    let allowed = rules_for(&report, "allowed_alloc.rs");
    assert_eq!(allowed, vec![("BNS-A000".into(), 5)]);
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file == "allowed_alloc.rs")
        .all(|f| f.blessable));
    let unused = rules_for(&report, "unused_allow.rs");
    assert_eq!(unused, vec![("BNS-A000".into(), 5)]);
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file == "unused_allow.rs")
        .all(|f| !f.blessable));
}

#[test]
fn bless_refuses_while_rule_violations_remain() {
    let cfg = fixture_cfg("refused");
    let blocked = bless(&cfg).unwrap().unwrap_err();
    assert!(blocked.iter().any(|f| f.rule == "BNS-A001"));
    assert!(
        blocked.iter().all(|f| !f.blessable),
        "only non-blessable findings may block a bless"
    );
    assert!(
        !cfg.ledger_path.exists() && !cfg.env_registry_path.exists(),
        "a refused bless must not write generated files"
    );
}

#[test]
fn bless_then_check_roundtrips_and_detects_tampering() {
    // Restrict the walk to the allowlisted fixture and the env reads so
    // every finding is bookkeeping (the README check is off: fixture
    // docs cover only one variable by design).
    let mut cfg = fixture_cfg("roundtrip");
    cfg.readme_path = None;
    cfg.skip = vec![
        "det_kernel.rs".into(),
        "det_helper.rs".into(),
        "lock_invert.rs".into(),
        "waker_missing.rs".into(),
        "hot_alloc.rs".into(),
        "unused_allow.rs".into(),
    ];

    let n = bless(&cfg).unwrap().unwrap();
    assert_eq!(n, 1, "exactly the allowed_alloc.rs allow");

    let clean = analyze(&cfg).unwrap();
    assert!(
        clean.findings.is_empty(),
        "freshly blessed state must verify: {:?}",
        clean.findings
    );
    let registry = std::fs::read_to_string(&cfg.env_registry_path).unwrap();
    assert!(registry.contains("`BNS_FIXTURE_WORKERS`"));
    assert!(registry.contains("`BNS_FIXTURE_GAIN`"));

    // Flip one ledger hash digit: the allow becomes unregistered AND
    // the row becomes stale.
    let text = std::fs::read_to_string(&cfg.ledger_path).unwrap();
    let digit = text.find("`0x").unwrap() + 3;
    let mut tampered = text.clone().into_bytes();
    tampered[digit] = if tampered[digit] == b'f' { b'0' } else { b'f' };
    std::fs::write(&cfg.ledger_path, String::from_utf8(tampered).unwrap()).unwrap();

    let report = analyze(&cfg).unwrap();
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "BNS-A000" && f.file == "allowed_alloc.rs"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "BNS-A000" && f.file == "ANALYZE_LEDGER.md"));

    // A registry row pointing at vanished code is flagged (blessable).
    std::fs::write(
        &cfg.ledger_path,
        xtask::analyze::ledger::render_allow_ledger(&clean.used_allows),
    )
    .unwrap();
    let mut registry = std::fs::read_to_string(&cfg.env_registry_path).unwrap();
    registry.push_str("| `BNS_GONE` | `nowhere.rs` | 1 |\n");
    std::fs::write(&cfg.env_registry_path, registry).unwrap();
    let report = analyze(&cfg).unwrap();
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "BNS-A002" && f.file == "ENV_REGISTRY.md" && f.blessable));

    std::fs::remove_file(&cfg.ledger_path).ok();
    std::fs::remove_file(&cfg.env_registry_path).ok();
}

#[test]
fn real_workspace_is_analyze_clean() {
    let cfg = AnalyzeConfig::for_repo(&workspace_root());
    let report = analyze(&cfg).unwrap();
    assert!(
        report.findings.is_empty(),
        "workspace analyze must pass; run `cargo xtask analyze` for details:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The workspace genuinely carries ledgered exceptions and env
    // reads, so an empty scan would mean the engine broke.
    assert!(
        report.used_allows.len() >= 10,
        "only {} allows used",
        report.used_allows.len()
    );
    assert!(
        report.fns_parsed >= 500,
        "only {} fns parsed",
        report.fns_parsed
    );
}
