//! Lexer totality over the real corpus and under fuzzing: every `.rs`
//! file in the workspace (vendored shims and lint fixtures included)
//! must lex into tokens that tile the input byte-exactly, and arbitrary
//! fragment soups must never panic or drop bytes.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use xtask::analyze::lexer::lex;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap()
        .to_path_buf()
}

/// Asserts the tiling invariant: tokens are contiguous, non-empty, in
/// order, and cover every byte — so concatenating token texts
/// round-trips the source.
fn assert_tiles(src: &str, ctx: &str) {
    let toks = lex(src);
    let mut pos = 0usize;
    for t in &toks {
        assert_eq!(t.start, pos, "gap/overlap at byte {pos} in {ctx}");
        assert!(t.end > t.start, "empty token at byte {pos} in {ctx}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "unlexed trailing bytes in {ctx}");
    let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "round-trip mismatch in {ctx}");
}

#[test]
fn every_workspace_file_tiles() {
    let root = workspace_root();
    // Walk everything the analyzer could ever see — including the
    // directories the analyze config skips (xtask itself, vendor/,
    // fixtures with deliberately broken style).
    let files = xtask::walk_rust_files(&root, &["target".into(), ".git".into()]).unwrap();
    assert!(files.len() >= 100, "corpus too small: {}", files.len());
    for p in &files {
        let src = std::fs::read_to_string(p).unwrap();
        assert_tiles(&src, &p.display().to_string());
    }
}

/// Syntax fragments chosen to stress every lexer mode boundary: raw
/// string delimiters, escapes, char-vs-lifetime, nested comments,
/// numeric edge shapes, and stray non-ASCII.
const FRAGMENTS: &[&str] = &[
    "fn", " ", "\n", "x", "_y9", "'a", "'a'", "'\\n'", "'", "\"", "\\", "\"str\"", "b\"", "b'q'",
    "r\"", "r#\"", "\"#", "r##\"", "\"##", "#", "//", "/*", "*/", "/", "*", "1", "0xFF", "1e-9",
    "2.5E+3", "1..2", "0u8", "{", "}", "(", ")", "::", ";", "->", "é", "🦀", "b", "r", "br##\"",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any concatenation of fragments lexes totally.
    #[test]
    fn fragment_soup_tiles(idx in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..48)) {
        let src: String = idx.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_tiles(&src, &format!("{src:?}"));
    }

    /// Arbitrary ASCII (controls included) lexes totally.
    #[test]
    fn ascii_soup_tiles(bytes in proptest::collection::vec(0u8..128, 0..200)) {
        let src: String = bytes.iter().map(|&b| b as char).collect();
        assert_tiles(&src, &format!("{src:?}"));
    }
}
