//! The audit auditing itself: every rule must catch its seeded fixture
//! under `fixtures/`, the bless/check cycle must round-trip, and the
//! real workspace must be clean.

use std::path::{Path, PathBuf};
use xtask::{audit, bless, AuditConfig, Rule};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .unwrap()
        .to_path_buf()
}

/// Config over the fixtures dir with a throwaway ledger path and
/// `hash_kernel.rs` / `fma_kernel.rs` designated as kernel files.
fn fixture_cfg(ledger_name: &str) -> AuditConfig {
    let root = fixtures_root();
    AuditConfig {
        ledger_path: std::env::temp_dir().join(format!(
            "xtask-selftest-{}-{ledger_name}",
            std::process::id()
        )),
        root,
        spawn_allow: vec![],
        kernel_files: vec![
            "hash_kernel.rs".into(),
            "fma_kernel.rs".into(),
            "codec_fma_kernel.rs".into(),
        ],
        skip: vec![],
    }
}

fn rules_for<'r>(report: &'r xtask::AuditReport, file: &str) -> Vec<(&'r Rule, usize)> {
    report
        .violations
        .iter()
        .filter(|v| v.file == file)
        .map(|v| (&v.rule, v.line))
        .collect()
}

#[test]
fn every_seeded_fixture_violation_is_caught() {
    let cfg = fixture_cfg("never-written.md");
    let report = audit(&cfg).unwrap();

    // Rule 1: undocumented unsafe, at the `unsafe {` line.
    let missing = rules_for(&report, "missing_safety.rs");
    assert_eq!(missing, vec![(&Rule::MissingSafety, 4)]);

    // Rule 2: the documented site exists but no ledger was written.
    let documented = rules_for(&report, "documented.rs");
    assert_eq!(documented.len(), 1);
    assert_eq!(documented[0].0, &Rule::LedgerMissing);

    // Rule 3: bare spawn flagged; spawn inside #[cfg(test)] exempt.
    let spawn = rules_for(&report, "spawn_violation.rs");
    assert_eq!(spawn, vec![(&Rule::ForbiddenSpawn, 4)]);
    assert!(rules_for(&report, "spawn_in_test.rs").is_empty());

    // Rule 4: hash collection in a configured kernel file. Both the
    // `use` line and the signature mention HashMap.
    let hashes = rules_for(&report, "hash_kernel.rs");
    assert!(!hashes.is_empty());
    assert!(hashes.iter().all(|(r, _)| **r == Rule::HashCollection));

    // Rule 5: `mul_add` in a configured kernel file, at the call line.
    let fma = rules_for(&report, "fma_kernel.rs");
    assert_eq!(fma, vec![(&Rule::FmaInKernel, 5)]);

    // Rule 5 again for the codec-kernel fixture: the wire codecs are
    // under the same FMA ban as every other kernel file.
    let codec_fma = rules_for(&report, "codec_fma_kernel.rs");
    assert_eq!(codec_fma, vec![(&Rule::FmaInKernel, 7)]);
}

#[test]
fn bless_refuses_while_safety_violations_remain() {
    let cfg = fixture_cfg("refused.md");
    let blocked = bless(&cfg).unwrap().unwrap_err();
    assert!(blocked.iter().any(|v| v.rule == Rule::MissingSafety));
    assert!(
        !cfg.ledger_path.exists(),
        "a refused bless must not write the ledger"
    );
}

#[test]
fn bless_then_check_roundtrips_and_detects_tampering() {
    // Restrict the walk to the documented fixture so bless succeeds.
    let mut cfg = fixture_cfg("roundtrip.md");
    cfg.skip = vec![
        "missing_safety.rs".into(),
        "spawn_violation.rs".into(),
        "hash_kernel.rs".into(),
        "fma_kernel.rs".into(),
        "codec_fma_kernel.rs".into(),
    ];

    let n = bless(&cfg).unwrap().unwrap();
    assert_eq!(n, 1, "exactly the documented.rs site");

    let clean = audit(&cfg).unwrap();
    assert!(
        clean.violations.is_empty(),
        "freshly blessed ledger must verify: {:?}",
        clean.violations
    );

    // Flip one hash digit in place (same width, still valid hex, but
    // a different value): the site becomes unregistered AND the row
    // becomes stale.
    let text = std::fs::read_to_string(&cfg.ledger_path).unwrap();
    let digit = text.find("`0x").unwrap() + 3;
    let mut tampered = text.clone().into_bytes();
    tampered[digit] = if tampered[digit] == b'f' { b'0' } else { b'f' };
    let tampered = String::from_utf8(tampered).unwrap();
    assert_ne!(text, tampered);
    std::fs::write(&cfg.ledger_path, tampered).unwrap();

    let report = audit(&cfg).unwrap();
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == Rule::LedgerMissing));
    assert!(report
        .violations
        .iter()
        .any(|v| v.rule == Rule::LedgerStale));

    std::fs::remove_file(&cfg.ledger_path).ok();
}

#[test]
fn real_workspace_is_clean() {
    let cfg = AuditConfig::for_repo(&workspace_root());
    let report = audit(&cfg).unwrap();
    assert!(
        report.violations.is_empty(),
        "workspace audit must pass; run `cargo xtask audit` for details:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The workspace genuinely contains unsafe (pool, kernels, loom
    // shim), so an empty site list would mean the scanner broke.
    assert!(
        report.sites.len() >= 10,
        "scanner found only {} sites",
        report.sites.len()
    );
}
