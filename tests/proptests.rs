//! Property-based tests on the core invariants, spanning crates.

use bns_graph::{generators, CsrGraph, GraphBuilder};
use bns_partition::{metrics, MetisLikePartitioner, Partitioner, Partitioning, RandomPartitioner};
use bns_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

/// An arbitrary small graph from random edges.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (
        5usize..60,
        proptest::collection::vec((0usize..60, 0usize..60), 0..200),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u < n && v < n {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
}

proptest! {
    /// CSR invariants hold for any edge soup.
    #[test]
    fn graph_always_valid(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
    }

    /// The Eq. 3 identity: total send volume == total boundary nodes,
    /// for any graph and any assignment.
    #[test]
    fn eq3_identity(g in arb_graph(), k in 1usize..6, seed in 0u64..50) {
        let k = k.min(g.num_nodes());
        let part = RandomPartitioner.partition(&g, k, seed);
        let sends: usize = metrics::send_volumes(&g, &part).iter().sum();
        let bounds: usize = metrics::boundary_counts(&g, &part).iter().sum();
        prop_assert_eq!(sends, bounds);
    }

    /// Every partitioner output covers all nodes with valid part ids.
    #[test]
    fn partitioners_produce_valid_assignments(g in arb_graph(), k in 1usize..5, seed in 0u64..20) {
        let k = k.min(g.num_nodes());
        for part in [
            RandomPartitioner.partition(&g, k, seed),
            MetisLikePartitioner::default().partition(&g, k, seed),
        ] {
            prop_assert_eq!(part.num_nodes(), g.num_nodes());
            prop_assert_eq!(part.num_parts(), k);
            prop_assert_eq!(part.sizes().iter().sum::<usize>(), g.num_nodes());
        }
    }

    /// comm_volume is monotone non-increasing when merging partitions
    /// (merging can only remove boundary relations).
    #[test]
    fn merging_partitions_reduces_volume(g in arb_graph(), seed in 0u64..20) {
        if g.num_nodes() < 4 { return Ok(()); }
        let part4 = RandomPartitioner.partition(&g, 4, seed);
        // Merge parts {0,1} and {2,3}.
        let merged: Vec<usize> = part4.assignments().iter().map(|&p| p / 2).collect();
        let part2 = Partitioning::new(merged, 2);
        prop_assert!(
            metrics::comm_volume(&g, &part2) <= metrics::comm_volume(&g, &part4)
        );
    }

    /// Matmul distributes over addition (the linear algebra the layers
    /// rely on).
    #[test]
    fn matmul_distributes(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let a = Matrix::random_normal(4, 5, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(5, 3, 0.0, 1.0, &mut rng);
        let c = Matrix::random_normal(5, 3, 0.0, 1.0, &mut rng);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// Aggregation adjoint property <Ax, y> == <x, A'y> for arbitrary
    /// graphs and scales.
    #[test]
    fn aggregate_adjoint(g in arb_graph(), seed in 0u64..100) {
        let n = g.num_nodes();
        let mut rng = SeededRng::new(seed);
        let scale: Vec<f32> = (0..n).map(|_| rng.uniform_range(0.1, 1.5)).collect();
        let x = Matrix::random_normal(n, 2, 0.0, 1.0, &mut rng);
        let y = Matrix::random_normal(n, 2, 0.0, 1.0, &mut rng);
        let ax = bns_nn::aggregate::scaled_sum_aggregate(&g, &x, n, &scale);
        let aty = bns_nn::aggregate::scaled_sum_aggregate_backward(&g, &y, n, &scale);
        let lhs: f32 = ax.hadamard(&y).sum();
        let rhs: f32 = x.hadamard(&aty).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    /// Power-law degree draws respect their bounds.
    #[test]
    fn power_law_within_bounds(seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let d = generators::power_law_degrees(200, 2.0, 50.0, 2.5, &mut rng);
        prop_assert!(d.iter().all(|&x| (2.0..=50.0).contains(&x)));
    }

    /// Induced subgraphs never contain edges absent from the parent.
    #[test]
    fn induced_subgraph_edges_exist_in_parent(g in arb_graph(), seed in 0u64..20) {
        let n = g.num_nodes();
        let mut rng = SeededRng::new(seed);
        let size = (n / 2).max(1);
        let nodes = rng.sample_distinct(n, size);
        let sub = g.induced_subgraph(&nodes);
        for (lu, lv) in sub.graph.edges() {
            let gu = sub.local_to_global[lu];
            let gv = sub.local_to_global[lv];
            prop_assert!(g.has_edge(gu, gv));
        }
    }
}
