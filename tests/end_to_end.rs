//! Cross-crate integration tests: dataset → partitioner → plan →
//! distributed engine, exercising the public API end to end.

use bns_data::SyntheticSpec;
use bns_gcn::engine::{train, train_with_plan, ModelArch, TrainConfig};
use bns_gcn::fullgraph::{train_full, FullGraphConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{metrics, MetisLikePartitioner, Partitioner, RandomPartitioner};
use std::sync::Arc;

fn dataset() -> Arc<bns_data::Dataset> {
    Arc::new(SyntheticSpec::reddit_sim().with_nodes(800).generate(99))
}

fn base_cfg() -> TrainConfig {
    TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![32],
        dropout: 0.0,
        lr: 0.01,
        epochs: 25,
        sampling: BoundarySampling::Bns { p: 0.5 },
        eval_every: 0,
        seed: 5,
        clip_norm: None,
        pipeline: false,
        workers: None,
        wire_precision: None,
    }
}

/// Full pipeline: synthesize, partition, train distributed, verify the
/// model actually learned (vs. the 1/16 chance level).
#[test]
fn pipeline_learns_above_chance() {
    let ds = dataset();
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
    let run = train(&ds, &part, &base_cfg());
    assert!(run.final_test > 0.5, "test accuracy {}", run.final_test);
    assert!(run.final_val > 0.5, "val accuracy {}", run.final_val);
}

/// The same configuration must produce bit-identical loss curves across
/// invocations (thread scheduling must not leak into results).
#[test]
fn distributed_training_is_deterministic() {
    let ds = dataset();
    let part = MetisLikePartitioner::default().partition(&ds.graph, 3, 1);
    let mut cfg = base_cfg();
    cfg.epochs = 8;
    let a = train(&ds, &part, &cfg);
    let b = train(&ds, &part, &cfg);
    let la: Vec<f64> = a.epochs.iter().map(|e| e.loss).collect();
    let lb: Vec<f64> = b.epochs.iter().map(|e| e.loss).collect();
    assert_eq!(la, lb);
    assert_eq!(a.final_test, b.final_test);
}

/// p=1 distributed training equals single-process full-graph training;
/// and the result is invariant to the number of partitions.
#[test]
fn p1_equals_fullgraph_for_any_partitioning() {
    let ds = dataset();
    let mut cfg = base_cfg();
    cfg.epochs = 5;
    cfg.sampling = BoundarySampling::Bns { p: 1.0 };
    let full = train_full(
        &ds,
        &FullGraphConfig {
            hidden: vec![32],
            dropout: 0.0,
            lr: 0.01,
            epochs: 5,
            seed: 5,
        },
    );
    for (partitioner, k) in [("metis", 3usize), ("random", 5)] {
        let part = if partitioner == "metis" {
            MetisLikePartitioner::default().partition(&ds.graph, k, 0)
        } else {
            RandomPartitioner.partition(&ds.graph, k, 0)
        };
        let run = train(&ds, &part, &cfg);
        for (e, (a, b)) in run
            .epochs
            .iter()
            .map(|s| s.loss)
            .zip(&full.losses)
            .enumerate()
        {
            assert!(
                (a - b).abs() < 3e-3 * b.abs().max(1.0),
                "{partitioner} k={k} epoch {e}: {a} vs {b}"
            );
        }
    }
}

/// Communication volume at p=1 equals the metric-layer prediction
/// (Eq. 3), wired through three crates: partition metrics, plan and the
/// engine's byte counters.
#[test]
fn comm_volume_consistency_across_crates() {
    let ds = dataset();
    let part = RandomPartitioner.partition(&ds.graph, 4, 2);
    let metric_volume = metrics::comm_volume(&ds.graph, &part);
    let plan = PartitionPlan::build(&ds, &part);
    assert_eq!(plan.total_boundary(), metric_volume);
    let boundary_counts = metrics::boundary_counts(&ds.graph, &part);
    for (p, &c) in plan.parts.iter().zip(&boundary_counts) {
        assert_eq!(p.n_boundary(), c);
    }
}

/// Boundary traffic scales ~linearly with p while accuracy stays in a
/// narrow band — the paper's headline trade-off.
#[test]
fn traffic_scales_with_p_accuracy_does_not() {
    let ds = dataset();
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 3);
    let plan = Arc::new(PartitionPlan::build(&ds, &part));
    let mut accs = Vec::new();
    let mut bytes = Vec::new();
    for p in [1.0, 0.25] {
        let mut cfg = base_cfg();
        cfg.sampling = BoundarySampling::Bns { p };
        cfg.epochs = 30;
        let run = train_with_plan(&plan, &cfg);
        accs.push(run.final_test);
        bytes.push(run.total_boundary_bytes() as f64);
    }
    let ratio = bytes[1] / bytes[0];
    assert!((ratio - 0.25).abs() < 0.08, "traffic ratio {ratio}");
    assert!(
        (accs[0] - accs[1]).abs() < 0.08,
        "accuracy gap too large: {accs:?}"
    );
}

/// Multi-label (Yelp-style) datasets flow through the same pipeline
/// with BCE + micro-F1.
#[test]
fn multilabel_pipeline() {
    let ds = Arc::new(SyntheticSpec::yelp_sim().with_nodes(600).generate(8));
    let part = MetisLikePartitioner::default().partition(&ds.graph, 2, 0);
    let mut cfg = base_cfg();
    cfg.epochs = 60;
    cfg.lr = 0.02;
    let run = train(&ds, &part, &cfg);
    assert!(run.final_test > 0.15, "micro-F1 {}", run.final_test);
}

/// GAT flows through the same engine.
#[test]
fn gat_pipeline() {
    let ds = dataset();
    let part = MetisLikePartitioner::default().partition(&ds.graph, 2, 0);
    let mut cfg = base_cfg();
    cfg.arch = ModelArch::Gat;
    cfg.epochs = 20;
    let run = train(&ds, &part, &cfg);
    assert!(run.final_test > 0.3, "GAT accuracy {}", run.final_test);
}

/// The degenerate sampling rates: p=0 trains fully isolated (still
/// learns something from features), p=1 is exact.
#[test]
fn extreme_sampling_rates() {
    let ds = dataset();
    let part = MetisLikePartitioner::default().partition(&ds.graph, 3, 0);
    for p in [0.0, 1.0] {
        let mut cfg = base_cfg();
        cfg.sampling = BoundarySampling::Bns { p };
        let run = train(&ds, &part, &cfg);
        assert!(run.final_test > 0.3, "p={p} accuracy {}", run.final_test);
    }
}
