//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind `parking_lot`'s
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly
//! (a poisoned lock is recovered rather than propagated, matching
//! `parking_lot`'s behavior of not poisoning at all). Only the surface
//! this workspace uses is provided.

use std::sync::{self, PoisonError};

/// Guard types are the `std` ones; `parking_lot`'s extra guard API is
/// not needed by this workspace.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared `RwLock` guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive `RwLock` guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic while a
    /// previous holder held the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
