//! Offline shim for the `criterion` crate.
//!
//! Provides the subset this workspace's benches use: [`Criterion`]
//! with `sample_size` and `bench_function`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from real criterion, by design: no statistical
//! analysis, plots, or saved baselines — each benchmark is timed with
//! plain `Instant` sampling and reported as mean/min ns per
//! iteration. `--test` (as passed by `cargo test --benches`) runs
//! every routine once and skips measurement, and a positional
//! command-line argument filters benchmarks by substring, matching
//! the real harness's behaviour.

use std::time::{Duration, Instant};

/// Per-iteration setup cost class. The shim times every variant the
/// same way (setup excluded from measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures on behalf of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration;
    /// only the routine is inside the timed window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    target_sample: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo may forward that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "-q" | "--verbose" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            target_sample: Duration::from_millis(20),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark (or once, untimed, under `--test`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            f(&mut bencher);
            println!("test {name} ... ok");
            return;
        }

        // Calibrate: grow the per-sample iteration count until one
        // sample takes roughly `target_sample`.
        f(&mut bencher); // warm-up, also first estimate
        while bencher.elapsed < self.target_sample && bencher.iters < (1 << 30) {
            let scale = if bencher.elapsed.is_zero() {
                100
            } else {
                (self.target_sample.as_nanos() / bencher.elapsed.as_nanos().max(1) + 1) as u64
            };
            bencher.iters = bencher.iters.saturating_mul(scale.clamp(2, 100));
            f(&mut bencher);
        }

        let iters = bencher.iters;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<44} mean {:>12} min {:>12}   ({} samples x {iters} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            samples.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export so benches can `use criterion::black_box` as with the
/// real crate.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)? ) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )*
        }
    };
    ( $name:ident, $($target:path),* $(,)? ) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),* $(,)? ) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_iterations() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 1000);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 8,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 8);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("us"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }
}
