//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from a deterministic RNG.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
/// plays the role of `new_tree(...).current()`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// How often an inclusive range emits an exact endpoint instead of an
/// interior draw (edge cases find the bugs).
const EDGE_DENOM: u64 = 32;

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match rng.below(EDGE_DENOM) {
                    0 => lo,
                    1 => hi,
                    _ => {
                        let span = (hi - lo) as u64;
                        if span == u64::MAX {
                            rng.next_u64() as $t
                        } else {
                            lo + rng.below(span + 1) as $t
                        }
                    }
                }
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let u = rng.unit_f64() as $t;
                let x = self.start + (self.end - self.start) * u;
                // f32 rounding can land exactly on `end`; pull it back in.
                if x >= self.end { self.start } else { x }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                match rng.below(EDGE_DENOM) {
                    0 => lo,
                    1 => hi,
                    _ => lo + (hi - lo) * rng.unit_f64() as $t,
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);
