//! Deterministic runner plumbing: config, RNG and failure type.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite
        // fast while still sweeping the edge-case paths.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// What a proptest body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64-based deterministic generator seeded from the test name,
/// so case streams are stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw `u64` (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` (widening-multiply; `n` must be > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
