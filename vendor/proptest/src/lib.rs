//! Offline shim for the `proptest` crate.
//!
//! Provides the subset of proptest this workspace uses: the
//! [`proptest!`] macro, `prop_assert*!` macros, [`Strategy`] with
//! `prop_map`, range/tuple strategies, [`collection::vec`], [`Just`],
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: each test's input stream is seeded from the
//!   test's module path, so every run sees the same cases. A failure
//!   message reports the case index; re-running reproduces it exactly.
//! * **No shrinking**: the failing inputs are whatever the reported
//!   case generated.
//! * Inclusive numeric ranges occasionally emit their exact endpoints
//!   (real proptest biases toward edge cases similarly).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

/// Defines deterministic property tests.
///
/// Supported grammar (a subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///     /// doc comments allowed
///     #[test]
///     fn my_prop(x in 0usize..10, v in proptest::collection::vec(0u64..5, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    ( @items ($cfg:expr); ) => {};
    ( @items ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\n\
                         (cases are deterministic; rerun reproduces this input — no shrinking)",
                        case + 1, cfg.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current proptest case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current proptest case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), l
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}", format!($($fmt)+), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f32..2.0, z in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z <= 5);
        }

        #[test]
        fn tuples_and_vec(pair in (0usize..4, 10usize..20), v in crate::collection::vec(0u32..7, 0..9)) {
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 7), "bad element in {:?}", v);
        }

        #[test]
        fn prop_map_works(n in (1usize..5).prop_map(|n| n * 10)) {
            prop_assert!(n % 10 == 0 && (10..50).contains(&n));
            prop_assert_ne!(n, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_and_early_return(n in 0usize..100) {
            if n > 50 { return Ok(()); }
            prop_assert!(n <= 50);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::deterministic("stream");
        let mut b = crate::test_runner::TestRng::deterministic("stream");
        let s = 0usize..1000;
        for _ in 0..32 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case() {
        proptest! {
            fn always_fails(x in 0usize..3) {
                prop_assert!(x > 10, "x was {}", x);
            }
        }
        always_fails();
    }
}
