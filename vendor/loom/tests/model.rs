//! Self-tests for the vendored loom shim: the explorer must actually
//! enumerate interleavings, find races/deadlocks, and model channel
//! and condvar semantics faithfully.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

#[test]
fn mutex_counter_is_always_two() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let h = loom::thread::spawn(move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        h.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(
        loom::last_iteration_count() > 1,
        "two contending threads must produce multiple schedules"
    );
}

#[test]
fn explorer_finds_the_lost_update() {
    // Classic unsynchronized read-modify-write: some interleaving must
    // observe the lost update (final == 1) and some the clean run
    // (final == 2). A sampling tester can miss one; DFS cannot.
    let outcomes: StdMutex<HashSet<usize>> = StdMutex::new(HashSet::new());
    loom::model(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || {
            let v = a2.load(Ordering::SeqCst);
            a2.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        h.join().unwrap();
        outcomes.lock().unwrap().insert(a.load(Ordering::SeqCst));
    });
    let seen = outcomes.into_inner().unwrap();
    assert!(seen.contains(&1), "lost-update interleaving not explored");
    assert!(seen.contains(&2), "serialized interleaving not explored");
}

#[test]
#[should_panic(expected = "deadlock")]
fn abba_lock_order_deadlocks() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = loom::thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        h.join().unwrap();
    });
}

#[test]
fn channel_delivers_in_order_and_disconnects() {
    loom::model(|| {
        let (tx, rx) = loom::sync::mpsc::channel::<u32>();
        let h = loom::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // tx dropped here: receiver must then see disconnection.
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "disconnect must surface as RecvError");
        h.join().unwrap();
    });
}

#[test]
fn condvar_latch_never_hangs() {
    // The flag-under-mutex + wait-loop protocol must be correct in
    // every schedule, including notify-before-wait (no lost wakeup:
    // the predicate re-check covers it).
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        {
            let (m, cv) = &*pair;
            let mut done = m.lock().unwrap();
            while !*done {
                done = cv.wait(done).unwrap();
            }
        }
        h.join().unwrap();
    });
}

#[test]
fn child_panic_propagates_through_join() {
    let result = std::panic::catch_unwind(|| {
        loom::model(|| {
            let h = loom::thread::spawn(|| panic!("child bug"));
            h.join().expect("child panicked");
        });
    });
    assert!(result.is_err(), "child panic must fail the model");
}
