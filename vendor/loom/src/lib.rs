//! Offline shim of the `loom` model checker.
//!
//! The real `loom` crate explores thread interleavings under the C11
//! memory model. This workspace builds fully offline (see
//! `vendor/README.md`), so we vendor a small but honest replacement: an
//! **exhaustive DFS scheduler** over a **sequentially-consistent**
//! model.
//!
//! # What it does
//!
//! [`model`] runs a closure repeatedly. Inside the closure, the
//! [`thread`] and [`sync`] shims route every *visible operation*
//! (atomic access, mutex lock, condvar wait/notify, channel send/recv,
//! spawn/join/yield) through a cooperative scheduler that serializes
//! execution: exactly one thread runs at a time, and before each
//! visible operation the scheduler picks which runnable thread goes
//! next. The sequence of picks is explored depth-first until every
//! schedule has been executed, so assertion failures, deadlocks and
//! protocol bugs that depend on interleaving are found
//! deterministically rather than probabilistically.
//!
//! # What it does *not* do
//!
//! * **Weak memory:** operations are explored under sequential
//!   consistency; `Ordering` arguments are accepted and ignored. Bugs
//!   that require observing `Relaxed`/`Acquire`-`Release` reordering
//!   are out of scope (the real loom models these).
//! * **Spurious condvar wakeups** are not modeled.
//! * **Partial-order reduction:** none; keep models small (a handful
//!   of threads, tens of visible operations). Exploration aborts with
//!   a panic after [`MAX_ITERATIONS`] schedules instead of hanging CI.
//!
//! Determinism contract: the model closure must behave identically
//! given the same schedule (no wall clock, no OS randomness) or replay
//! fails with a "nondeterministic replay" panic.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

/// Hard cap on explored schedules; exceeding it panics so a state-space
/// explosion surfaces as a test failure, not a CI timeout.
pub const MAX_ITERATIONS: u64 = 1_000_000;

/// Number of schedules explored by the most recent completed [`model`]
/// call (for shim self-tests and curiosity).
pub fn last_iteration_count() -> u64 {
    LAST_ITERATIONS.load(StdOrdering::SeqCst)
}

static LAST_ITERATIONS: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Scheduler runtime
// ---------------------------------------------------------------------------

mod rt {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    pub(crate) enum TState {
        Runnable,
        Blocked(u64),
        Finished,
    }

    pub(crate) struct Exec {
        pub in_model: bool,
        /// Monotonic run id; parked threads from a dead run never match
        /// the current epoch and thus never resume user code.
        pub epoch: u64,
        pub active: usize,
        pub threads: Vec<TState>,
        pub prefix: Vec<usize>,
        pub cursor: usize,
        /// `(chosen index, number of runnable threads)` per decision.
        pub choices: Vec<(usize, usize)>,
        pub next_res: u64,
        pub abort: Option<String>,
    }

    struct Rt {
        m: StdMutex<Exec>,
        cv: StdCondvar,
    }

    static RT: OnceLock<Rt> = OnceLock::new();

    fn rt() -> &'static Rt {
        RT.get_or_init(|| Rt {
            m: StdMutex::new(Exec {
                in_model: false,
                epoch: 0,
                active: 0,
                threads: Vec::new(),
                prefix: Vec::new(),
                cursor: 0,
                choices: Vec::new(),
                next_res: 0,
                abort: None,
            }),
            cv: StdCondvar::new(),
        })
    }

    pub(crate) fn lock() -> StdMutexGuard<'static, Exec> {
        // A panicking model thread may poison the lock; the state is
        // still coherent for our purposes (we only read/replace it).
        rt().m.lock().unwrap_or_else(|e| e.into_inner())
    }

    thread_local! {
        /// `(epoch, tid)` of the controlled thread, if any.
        static IDENT: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
    }

    pub(crate) fn set_ident(epoch: u64, tid: usize) {
        IDENT.with(|c| c.set(Some((epoch, tid))));
    }

    pub(crate) fn ident() -> (u64, usize) {
        IDENT
            .with(|c| c.get())
            .unwrap_or_else(|| panic!("loom primitives may only be used inside loom::model"))
    }

    /// Picks the next thread to run and publishes the decision. Panics
    /// (and aborts the whole run) on deadlock.
    fn decide(g: &mut Exec) {
        if let Some(msg) = &g.abort {
            let msg = msg.clone();
            panic!("{msg}");
        }
        let runnable: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, TState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let live = g
                .threads
                .iter()
                .filter(|t| !matches!(t, TState::Finished))
                .count();
            let msg = format!("loom: deadlock detected — all {live} live thread(s) are blocked");
            g.abort = Some(msg.clone());
            rt().cv.notify_all();
            panic!("{msg}");
        }
        let idx = if g.cursor < g.prefix.len() {
            let i = g.prefix[g.cursor];
            assert!(
                i < runnable.len(),
                "loom: nondeterministic replay (planned choice {i} of {} runnable)",
                runnable.len()
            );
            i
        } else {
            0
        };
        g.choices.push((idx, runnable.len()));
        g.cursor += 1;
        g.active = runnable[idx];
        rt().cv.notify_all();
    }

    fn park_until_active(mut g: StdMutexGuard<'static, Exec>, epoch: u64, me: usize) {
        loop {
            if g.epoch != epoch {
                // A previous run aborted and a new one started while we
                // were parked; sleep forever rather than touch the new
                // run's state (this OS thread is leaked, which only
                // happens on already-failing tests).
                g = rt().cv.wait(g).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            if let Some(msg) = &g.abort {
                let msg = msg.clone();
                drop(g);
                panic!("{msg}");
            }
            if g.active == me {
                return;
            }
            g = rt().cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A visible operation is about to happen on the current thread:
    /// give the scheduler a chance to run someone else first.
    pub(crate) fn yield_point() {
        let (epoch, me) = ident();
        let mut g = lock();
        assert!(g.in_model && g.epoch == epoch, "loom: stale model thread");
        decide(&mut g);
        park_until_active(g, epoch, me);
    }

    /// Blocks the current thread on resource `res` until some other
    /// thread calls [`wake_all`]/[`wake_one`] for it.
    pub(crate) fn block_on(res: u64) {
        let (epoch, me) = ident();
        let mut g = lock();
        g.threads[me] = TState::Blocked(res);
        decide(&mut g);
        park_until_active(g, epoch, me);
    }

    /// Marks every thread blocked on `res` runnable (they actually run
    /// at a later decision point).
    pub(crate) fn wake_all(res: u64) {
        let mut g = lock();
        for t in g.threads.iter_mut() {
            if matches!(t, TState::Blocked(r) if *r == res) {
                *t = TState::Runnable;
            }
        }
    }

    /// Wakes the lowest-tid thread blocked on `res` (documented
    /// determinism policy for `notify_one`).
    pub(crate) fn wake_one(res: u64) {
        let mut g = lock();
        for t in g.threads.iter_mut() {
            if matches!(t, TState::Blocked(r) if *r == res) {
                *t = TState::Runnable;
                return;
            }
        }
    }

    pub(crate) fn new_res_id() -> u64 {
        let mut g = lock();
        g.next_res += 1;
        g.next_res
    }

    /// Registers a new controlled thread; returns `(epoch, tid)`.
    pub(crate) fn register_thread() -> (u64, usize) {
        let mut g = lock();
        assert!(g.in_model, "loom: spawn outside loom::model");
        g.threads.push(TState::Runnable);
        (g.epoch, g.threads.len() - 1)
    }

    /// First park of a freshly spawned thread (before any user code).
    pub(crate) fn initial_park(epoch: u64, me: usize) {
        set_ident(epoch, me);
        let g = lock();
        park_until_active(g, epoch, me);
    }

    /// Resource id space for join-waits: `JOIN_BASE | tid`.
    pub(crate) const JOIN_BASE: u64 = 1 << 62;

    pub(crate) fn finish_thread() {
        let (epoch, me) = ident();
        let mut g = lock();
        if g.epoch != epoch {
            return;
        }
        g.threads[me] = TState::Finished;
        for t in g.threads.iter_mut() {
            if matches!(t, TState::Blocked(r) if *r == JOIN_BASE | me as u64) {
                *t = TState::Runnable;
            }
        }
        if g.abort.is_some() {
            rt().cv.notify_all();
            return;
        }
        decide(&mut g);
    }

    pub(crate) fn is_finished(tid: usize) -> bool {
        matches!(lock().threads[tid], TState::Finished)
    }

    /// One full execution of the model closure under `prefix`.
    pub(crate) fn run_once(f: &(dyn Fn() + Sync), prefix: &[usize]) -> Vec<(usize, usize)> {
        let epoch = {
            let mut g = lock();
            assert!(
                !g.in_model,
                "loom: nested or concurrent loom::model calls are not supported"
            );
            let epoch = g.epoch + 1;
            *g = Exec {
                in_model: true,
                epoch,
                active: 0,
                threads: vec![TState::Runnable],
                prefix: prefix.to_vec(),
                cursor: 0,
                choices: Vec::new(),
                next_res: 0,
                abort: None,
            };
            epoch
        };
        set_ident(epoch, 0);
        let res = catch_unwind(AssertUnwindSafe(f));
        let (choices, live) = {
            let mut g = lock();
            g.threads[0] = TState::Finished;
            g.in_model = false;
            let live = g
                .threads
                .iter()
                .filter(|t| !matches!(t, TState::Finished))
                .count();
            (std::mem::take(&mut g.choices), live)
        };
        IDENT.with(|c| c.set(None));
        if let Err(p) = res {
            resume_unwind(p);
        }
        assert!(
            live == 0,
            "loom: model closure returned with {live} unjoined live thread(s)"
        );
        choices
    }
}

// ---------------------------------------------------------------------------
// Public model entry point
// ---------------------------------------------------------------------------

/// Explores every schedule of `f` depth-first. Panics from any
/// schedule (assertion failures, detected deadlocks) propagate to the
/// caller with the offending schedule already minimal-prefix replayed.
pub fn model<F>(f: F)
where
    F: Fn() + Sync,
{
    // One exploration at a time: `#[test]`s run on parallel threads,
    // and the scheduler state is process-global.
    static MODEL_LOCK: StdMutex<()> = StdMutex::new(());
    let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= MAX_ITERATIONS,
            "loom: exceeded {MAX_ITERATIONS} schedules — shrink the model"
        );
        let choices = rt::run_once(&f, &prefix);
        // Backtrack: bump the deepest decision that still has an
        // unexplored branch, drop everything after it.
        let mut next: Option<Vec<usize>> = None;
        for k in (0..choices.len()).rev() {
            let (chosen, n) = choices[k];
            if chosen + 1 < n {
                let mut p: Vec<usize> = choices[..k].iter().map(|&(c, _)| c).collect();
                p.push(chosen + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) => prefix = p,
            None => break,
        }
    }
    LAST_ITERATIONS.store(iterations, StdOrdering::SeqCst);
}

// ---------------------------------------------------------------------------
// thread shim
// ---------------------------------------------------------------------------

/// Controlled replacement for `std::thread`.
pub mod thread {
    use super::*;
    use std::sync::Arc;

    /// Handle to a controlled thread; `join` blocks the calling model
    /// thread at a schedule point.
    pub struct JoinHandle<T> {
        tid: usize,
        slot: Arc<StdMutex<Option<std::thread::Result<T>>>>,
        os: Option<std::thread::JoinHandle<()>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result
        /// (`Err` carries the thread's panic payload, as in std).
        pub fn join(mut self) -> std::thread::Result<T> {
            rt::yield_point();
            loop {
                if rt::is_finished(self.tid) {
                    break;
                }
                rt::block_on(rt::JOIN_BASE | self.tid as u64);
            }
            // The controlled thread has passed its finish point; the OS
            // thread exits immediately after, so this join is prompt.
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            let out = self
                .slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("loom: thread result taken twice");
            out
        }
    }

    /// Spawns a controlled thread running `f`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("loom spawn failed")
    }

    /// API-compatible subset of `std::thread::Builder` (the name is
    /// accepted and ignored).
    #[derive(Default)]
    pub struct Builder {
        _name: Option<String>,
    }

    impl Builder {
        /// New builder with default settings.
        pub fn new() -> Self {
            Self::default()
        }

        /// Sets the (ignored) thread name.
        pub fn name(mut self, name: String) -> Self {
            self._name = Some(name);
            self
        }

        /// Spawns a controlled thread running `f`.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let (epoch, tid) = rt::register_thread();
            let slot: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let os = std::thread::spawn(move || {
                // The initial park runs inside the catch so that an
                // abort raised while we are parked still reaches
                // `finish_thread` and the run terminates cleanly.
                let out = catch_unwind(AssertUnwindSafe(|| {
                    rt::initial_park(epoch, tid);
                    f()
                }));
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                rt::finish_thread();
            });
            // Let the scheduler consider running the child right away.
            rt::yield_point();
            Ok(JoinHandle {
                tid,
                slot,
                os: Some(os),
            })
        }
    }

    /// A pure schedule point.
    pub fn yield_now() {
        rt::yield_point();
    }
}

// ---------------------------------------------------------------------------
// sync shim
// ---------------------------------------------------------------------------

/// Controlled replacements for `std::sync` types.
pub mod sync {
    use super::*;
    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::ops::{Deref, DerefMut};

    pub use std::sync::Arc;

    /// `std::sync::Mutex` replacement; every `lock` is a schedule
    /// point and contention blocks through the scheduler.
    pub struct Mutex<T: ?Sized> {
        id: u64,
        /// Real atomic (not a Cell): threads unwinding after an abort
        /// may release guards concurrently, and the flag must stay
        /// race-free even then.
        locked: std::sync::atomic::AtomicBool,
        data: UnsafeCell<T>,
    }

    // SAFETY: access to `data` only happens through a held guard while
    // the owning thread holds the scheduler's execution token (exactly
    // one model thread runs at a time), so there are no concurrent
    // accesses despite the UnsafeCell interior mutability; `locked` is
    // a real atomic.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    // SAFETY: as above — the cooperative scheduler serializes every
    // access to `data`, so `&Mutex<T>` may cross threads.
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    /// RAII lock guard; releasing is *not* a schedule point (waiters
    /// become runnable and compete at the next decision).
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// New unlocked mutex.
        pub fn new(t: T) -> Self {
            Self {
                id: rt::new_res_id(),
                locked: std::sync::atomic::AtomicBool::new(false),
                data: UnsafeCell::new(t),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking through the scheduler. The
        /// `Result` mirrors std's poisoning API but never errs.
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::convert::Infallible> {
            rt::yield_point();
            loop {
                if !self.locked.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    return Ok(MutexGuard { lock: self });
                }
                rt::block_on(self.id);
            }
        }

        fn raw_unlock(&self) {
            self.locked
                .store(false, std::sync::atomic::Ordering::SeqCst);
            rt::wake_all(self.id);
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.lock.raw_unlock();
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the guard proves this thread holds the lock, and
            // the scheduler serializes execution, so no other reference
            // to the data exists while the guard is live.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref` — exclusive by lock ownership plus
            // serialized execution.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    /// `std::sync::Condvar` replacement (no spurious wakeups;
    /// `notify_one` wakes the lowest-tid waiter).
    pub struct Condvar {
        id: u64,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        /// New condition variable.
        pub fn new() -> Self {
            Self {
                id: rt::new_res_id(),
            }
        }

        /// Atomically releases the guard's mutex and blocks until
        /// notified, then re-acquires.
        pub fn wait<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> Result<MutexGuard<'a, T>, std::convert::Infallible> {
            let lock = guard.lock;
            // Release without a schedule point: the release and the
            // transition to "waiting" are one atomic step, exactly the
            // guarantee a real condvar gives.
            std::mem::forget(guard);
            lock.raw_unlock();
            rt::block_on(self.id);
            // Re-acquire; `lock` contains its own schedule point.
            lock.lock()
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            rt::yield_point();
            rt::wake_all(self.id);
        }

        /// Wakes the lowest-tid waiter.
        pub fn notify_one(&self) {
            rt::yield_point();
            rt::wake_one(self.id);
        }
    }

    /// Sequentially-consistent atomic shims: every access is a schedule
    /// point; `Ordering` arguments are accepted and ignored.
    pub mod atomic {
        use super::super::rt;
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_shim {
            ($name:ident, $std:ty, $t:ty) => {
                /// Scheduler-instrumented atomic (SC semantics).
                #[derive(Debug, Default)]
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    /// New atomic with the given value.
                    pub fn new(v: $t) -> Self {
                        Self { v: <$std>::new(v) }
                    }

                    /// Schedule point, then load.
                    pub fn load(&self, _o: Ordering) -> $t {
                        rt::yield_point();
                        self.v.load(Ordering::SeqCst)
                    }

                    /// Schedule point, then store.
                    pub fn store(&self, val: $t, _o: Ordering) {
                        rt::yield_point();
                        self.v.store(val, Ordering::SeqCst)
                    }

                    /// Schedule point, then swap.
                    pub fn swap(&self, val: $t, _o: Ordering) -> $t {
                        rt::yield_point();
                        self.v.swap(val, Ordering::SeqCst)
                    }
                }
            };
        }

        macro_rules! atomic_shim_arith {
            ($name:ident, $t:ty) => {
                impl $name {
                    /// Schedule point, then fetch_add.
                    pub fn fetch_add(&self, val: $t, _o: Ordering) -> $t {
                        rt::yield_point();
                        self.v.fetch_add(val, Ordering::SeqCst)
                    }

                    /// Schedule point, then fetch_sub.
                    pub fn fetch_sub(&self, val: $t, _o: Ordering) -> $t {
                        rt::yield_point();
                        self.v.fetch_sub(val, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic_shim!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic_shim!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_shim!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        atomic_shim!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        atomic_shim_arith!(AtomicUsize, usize);
        atomic_shim_arith!(AtomicU64, u64);
        atomic_shim_arith!(AtomicU32, u32);
    }

    /// `std::sync::mpsc` replacement: unbounded channel whose
    /// send/recv are schedule points and whose blocking `recv` parks
    /// through the scheduler.
    pub mod mpsc {
        use super::super::rt;
        use super::*;

        /// Error returned by `send` when the receiver is gone.
        pub struct SendError<T>(pub T);

        // Matches std: Debug without a `T: Debug` bound, so callers can
        // `.expect()` sends of non-Debug payloads under either cfg.
        impl<T> std::fmt::Debug for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("SendError(..)")
            }
        }

        /// Error returned by `recv` when every sender is gone.
        #[derive(Debug)]
        pub struct RecvError;

        /// Error returned by `try_recv` on an empty or disconnected
        /// channel (same shape as `std::sync::mpsc::TryRecvError`).
        #[derive(Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message is currently queued.
            Empty,
            /// Every sender is gone and the queue is drained.
            Disconnected,
        }

        struct Chan<T> {
            id: u64,
            inner: StdMutex<ChanInner<T>>,
        }

        struct ChanInner<T> {
            q: VecDeque<T>,
            senders: usize,
            rx_alive: bool,
        }

        impl<T> Chan<T> {
            fn inner(&self) -> StdMutexGuard<'_, ChanInner<T>> {
                self.inner.lock().unwrap_or_else(|e| e.into_inner())
            }
        }

        /// Sending half; clonable.
        pub struct Sender<T> {
            chan: Arc<Chan<T>>,
        }

        /// Receiving half.
        pub struct Receiver<T> {
            chan: Arc<Chan<T>>,
        }

        /// Creates a connected `(Sender, Receiver)` pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let chan = Arc::new(Chan {
                id: rt::new_res_id(),
                inner: StdMutex::new(ChanInner {
                    q: VecDeque::new(),
                    senders: 1,
                    rx_alive: true,
                }),
            });
            (
                Sender {
                    chan: Arc::clone(&chan),
                },
                Receiver { chan },
            )
        }

        impl<T> Sender<T> {
            /// Schedule point, then enqueue (wakes a parked receiver).
            pub fn send(&self, t: T) -> Result<(), SendError<T>> {
                rt::yield_point();
                {
                    let mut inner = self.chan.inner();
                    if !inner.rx_alive {
                        return Err(SendError(t));
                    }
                    inner.q.push_back(t);
                }
                rt::wake_all(self.chan.id);
                Ok(())
            }
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                self.chan.inner().senders += 1;
                Sender {
                    chan: Arc::clone(&self.chan),
                }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let last = {
                    let mut inner = self.chan.inner();
                    inner.senders -= 1;
                    inner.senders == 0
                };
                if last {
                    // Wake a receiver parked in recv so it can observe
                    // disconnection.
                    rt::wake_all(self.chan.id);
                }
            }
        }

        impl<T> Receiver<T> {
            /// Schedule point, then dequeue; parks until a message or
            /// full disconnection.
            pub fn recv(&self) -> Result<T, RecvError> {
                rt::yield_point();
                loop {
                    {
                        let mut inner = self.chan.inner();
                        if let Some(v) = inner.q.pop_front() {
                            return Ok(v);
                        }
                        if inner.senders == 0 {
                            return Err(RecvError);
                        }
                    }
                    rt::block_on(self.chan.id);
                }
            }

            /// Schedule point, then non-blocking dequeue.
            pub fn try_recv(&self) -> Result<T, TryRecvError> {
                rt::yield_point();
                let mut inner = self.chan.inner();
                if let Some(v) = inner.q.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(TryRecvError::Disconnected);
                }
                Err(TryRecvError::Empty)
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                self.chan.inner().rx_alive = false;
            }
        }
    }
}
