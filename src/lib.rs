//! Workspace umbrella crate for the BNS-GCN reproduction.
//!
//! This crate exists so the repository root can host `examples/` and
//! `tests/` that exercise the public APIs of all member crates. See the
//! individual crates (`bns-gcn`, `bns-graph`, ...) for the actual library
//! surface.

// No unsafe here, enforced at compile time (the audited unsafe lives in
// bns-tensor, bns-nn and the vendored loom shim; see UNSAFE_LEDGER.md).
#![forbid(unsafe_code)]
pub use bns_comm as comm;
pub use bns_data as data;
pub use bns_gcn as gcn;
pub use bns_graph as graph;
pub use bns_nn as nn;
pub use bns_partition as partition;
pub use bns_tensor as tensor;
