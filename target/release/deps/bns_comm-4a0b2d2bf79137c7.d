/root/repo/target/release/deps/bns_comm-4a0b2d2bf79137c7.d: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/release/deps/libbns_comm-4a0b2d2bf79137c7.rlib: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/release/deps/libbns_comm-4a0b2d2bf79137c7.rmeta: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

crates/comm/src/lib.rs:
crates/comm/src/cost.rs:
crates/comm/src/rank.rs:
crates/comm/src/traffic.rs:
