/root/repo/target/release/deps/bns_gcn_repro-b0c42885cd611c33.d: src/lib.rs

/root/repo/target/release/deps/libbns_gcn_repro-b0c42885cd611c33.rlib: src/lib.rs

/root/repo/target/release/deps/libbns_gcn_repro-b0c42885cd611c33.rmeta: src/lib.rs

src/lib.rs:
