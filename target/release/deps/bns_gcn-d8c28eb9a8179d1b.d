/root/repo/target/release/deps/bns_gcn-d8c28eb9a8179d1b.d: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

/root/repo/target/release/deps/libbns_gcn-d8c28eb9a8179d1b.rlib: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

/root/repo/target/release/deps/libbns_gcn-d8c28eb9a8179d1b.rmeta: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

crates/core/src/lib.rs:
crates/core/src/costsim.rs:
crates/core/src/engine.rs:
crates/core/src/fullgraph.rs:
crates/core/src/memory.rs:
crates/core/src/minibatch.rs:
crates/core/src/plan.rs:
crates/core/src/sampling.rs:
crates/core/src/variance.rs:
