/root/repo/target/release/deps/bns_telemetry-545801bc82728afd.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libbns_telemetry-545801bc82728afd.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libbns_telemetry-545801bc82728afd.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
