/root/repo/target/release/deps/bns_data-6a8f255ea4f8a819.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

/root/repo/target/release/deps/libbns_data-6a8f255ea4f8a819.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

/root/repo/target/release/deps/libbns_data-6a8f255ea4f8a819.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/spec.rs:
