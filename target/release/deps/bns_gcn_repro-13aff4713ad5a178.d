/root/repo/target/release/deps/bns_gcn_repro-13aff4713ad5a178.d: src/lib.rs

/root/repo/target/release/deps/libbns_gcn_repro-13aff4713ad5a178.rlib: src/lib.rs

/root/repo/target/release/deps/libbns_gcn_repro-13aff4713ad5a178.rmeta: src/lib.rs

src/lib.rs:
