/root/repo/target/release/deps/bns_graph-47ecfcfd9a39020e.d: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

/root/repo/target/release/deps/libbns_graph-47ecfcfd9a39020e.rlib: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

/root/repo/target/release/deps/libbns_graph-47ecfcfd9a39020e.rmeta: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/algo.rs:
crates/graph/src/csr.rs:
crates/graph/src/generators.rs:
crates/graph/src/sampler.rs:
crates/graph/src/stats.rs:
