/root/repo/target/release/deps/bns_tensor-944b45ee725e7a3d.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libbns_tensor-944b45ee725e7a3d.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libbns_tensor-944b45ee725e7a3d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
