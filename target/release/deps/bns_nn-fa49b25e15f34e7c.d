/root/repo/target/release/deps/bns_nn-fa49b25e15f34e7c.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/aggregate.rs crates/nn/src/gradcheck.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/gat.rs crates/nn/src/layers/gcn.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/sage.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/optim.rs

/root/repo/target/release/deps/libbns_nn-fa49b25e15f34e7c.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/aggregate.rs crates/nn/src/gradcheck.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/gat.rs crates/nn/src/layers/gcn.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/sage.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/optim.rs

/root/repo/target/release/deps/libbns_nn-fa49b25e15f34e7c.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/aggregate.rs crates/nn/src/gradcheck.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/gat.rs crates/nn/src/layers/gcn.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/sage.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/optim.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/aggregate.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/gat.rs:
crates/nn/src/layers/gcn.rs:
crates/nn/src/layers/linear.rs:
crates/nn/src/layers/sage.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/optim.rs:
