/root/repo/target/release/deps/criterion-c66227e069ef761d.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c66227e069ef761d.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c66227e069ef761d.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
