/root/repo/target/release/deps/bns_comm-751c8d1bce0e3beb.d: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/release/deps/libbns_comm-751c8d1bce0e3beb.rlib: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/release/deps/libbns_comm-751c8d1bce0e3beb.rmeta: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

crates/comm/src/lib.rs:
crates/comm/src/cost.rs:
crates/comm/src/rank.rs:
crates/comm/src/traffic.rs:
