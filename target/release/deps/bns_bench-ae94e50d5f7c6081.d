/root/repo/target/release/deps/bns_bench-ae94e50d5f7c6081.d: crates/bench/src/lib.rs crates/bench/src/exp_ablation.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_edge.rs crates/bench/src/exp_gat.rs crates/bench/src/exp_memory.rs crates/bench/src/exp_partition.rs crates/bench/src/exp_sampling.rs crates/bench/src/exp_throughput.rs crates/bench/src/exp_variance.rs

/root/repo/target/release/deps/libbns_bench-ae94e50d5f7c6081.rlib: crates/bench/src/lib.rs crates/bench/src/exp_ablation.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_edge.rs crates/bench/src/exp_gat.rs crates/bench/src/exp_memory.rs crates/bench/src/exp_partition.rs crates/bench/src/exp_sampling.rs crates/bench/src/exp_throughput.rs crates/bench/src/exp_variance.rs

/root/repo/target/release/deps/libbns_bench-ae94e50d5f7c6081.rmeta: crates/bench/src/lib.rs crates/bench/src/exp_ablation.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_edge.rs crates/bench/src/exp_gat.rs crates/bench/src/exp_memory.rs crates/bench/src/exp_partition.rs crates/bench/src/exp_sampling.rs crates/bench/src/exp_throughput.rs crates/bench/src/exp_variance.rs

crates/bench/src/lib.rs:
crates/bench/src/exp_ablation.rs:
crates/bench/src/exp_accuracy.rs:
crates/bench/src/exp_edge.rs:
crates/bench/src/exp_gat.rs:
crates/bench/src/exp_memory.rs:
crates/bench/src/exp_partition.rs:
crates/bench/src/exp_sampling.rs:
crates/bench/src/exp_throughput.rs:
crates/bench/src/exp_variance.rs:
