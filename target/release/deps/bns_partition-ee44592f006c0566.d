/root/repo/target/release/deps/bns_partition-ee44592f006c0566.d: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

/root/repo/target/release/deps/libbns_partition-ee44592f006c0566.rlib: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

/root/repo/target/release/deps/libbns_partition-ee44592f006c0566.rmeta: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

crates/partition/src/lib.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel.rs:
crates/partition/src/partitioners.rs:
crates/partition/src/partitioning.rs:
