/root/repo/target/release/deps/kernels-aa94ba4b08db82ca.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-aa94ba4b08db82ca: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
