/root/repo/target/release/deps/telemetry_overhead-4b6dff68d958ada9.d: crates/bench/benches/telemetry_overhead.rs

/root/repo/target/release/deps/telemetry_overhead-4b6dff68d958ada9: crates/bench/benches/telemetry_overhead.rs

crates/bench/benches/telemetry_overhead.rs:
