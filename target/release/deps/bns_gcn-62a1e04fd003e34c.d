/root/repo/target/release/deps/bns_gcn-62a1e04fd003e34c.d: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

/root/repo/target/release/deps/libbns_gcn-62a1e04fd003e34c.rlib: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

/root/repo/target/release/deps/libbns_gcn-62a1e04fd003e34c.rmeta: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

crates/core/src/lib.rs:
crates/core/src/costsim.rs:
crates/core/src/engine.rs:
crates/core/src/fullgraph.rs:
crates/core/src/memory.rs:
crates/core/src/minibatch.rs:
crates/core/src/plan.rs:
crates/core/src/sampling.rs:
crates/core/src/variance.rs:
