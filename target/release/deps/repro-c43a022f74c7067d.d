/root/repo/target/release/deps/repro-c43a022f74c7067d.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-c43a022f74c7067d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
