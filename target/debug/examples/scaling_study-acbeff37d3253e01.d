/root/repo/target/debug/examples/scaling_study-acbeff37d3253e01.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-acbeff37d3253e01: examples/scaling_study.rs

examples/scaling_study.rs:
