/root/repo/target/debug/examples/sampling_showdown-77e63db674f7c89b.d: examples/sampling_showdown.rs

/root/repo/target/debug/examples/sampling_showdown-77e63db674f7c89b: examples/sampling_showdown.rs

examples/sampling_showdown.rs:
