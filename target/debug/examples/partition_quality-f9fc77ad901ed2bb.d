/root/repo/target/debug/examples/partition_quality-f9fc77ad901ed2bb.d: examples/partition_quality.rs Cargo.toml

/root/repo/target/debug/examples/libpartition_quality-f9fc77ad901ed2bb.rmeta: examples/partition_quality.rs Cargo.toml

examples/partition_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
