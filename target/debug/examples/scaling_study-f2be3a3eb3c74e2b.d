/root/repo/target/debug/examples/scaling_study-f2be3a3eb3c74e2b.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-f2be3a3eb3c74e2b: examples/scaling_study.rs

examples/scaling_study.rs:
