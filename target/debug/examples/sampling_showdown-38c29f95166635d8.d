/root/repo/target/debug/examples/sampling_showdown-38c29f95166635d8.d: examples/sampling_showdown.rs

/root/repo/target/debug/examples/sampling_showdown-38c29f95166635d8: examples/sampling_showdown.rs

examples/sampling_showdown.rs:
