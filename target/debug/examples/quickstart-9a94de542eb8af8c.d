/root/repo/target/debug/examples/quickstart-9a94de542eb8af8c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9a94de542eb8af8c: examples/quickstart.rs

examples/quickstart.rs:
