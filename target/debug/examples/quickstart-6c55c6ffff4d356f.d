/root/repo/target/debug/examples/quickstart-6c55c6ffff4d356f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6c55c6ffff4d356f: examples/quickstart.rs

examples/quickstart.rs:
