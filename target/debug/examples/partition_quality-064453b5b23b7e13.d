/root/repo/target/debug/examples/partition_quality-064453b5b23b7e13.d: examples/partition_quality.rs

/root/repo/target/debug/examples/partition_quality-064453b5b23b7e13: examples/partition_quality.rs

examples/partition_quality.rs:
