/root/repo/target/debug/examples/quickstart-234a5ffd84090d99.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-234a5ffd84090d99.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
