/root/repo/target/debug/examples/sampling_showdown-9f8ce992920941ce.d: examples/sampling_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libsampling_showdown-9f8ce992920941ce.rmeta: examples/sampling_showdown.rs Cargo.toml

examples/sampling_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
