/root/repo/target/debug/examples/partition_quality-9f7907f7494942af.d: examples/partition_quality.rs

/root/repo/target/debug/examples/partition_quality-9f7907f7494942af: examples/partition_quality.rs

examples/partition_quality.rs:
