/root/repo/target/debug/examples/scaling_study-e9356c516528b24a.d: examples/scaling_study.rs Cargo.toml

/root/repo/target/debug/examples/libscaling_study-e9356c516528b24a.rmeta: examples/scaling_study.rs Cargo.toml

examples/scaling_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
