/root/repo/target/debug/deps/traffic_props-467c24a9841add81.d: crates/comm/tests/traffic_props.rs

/root/repo/target/debug/deps/traffic_props-467c24a9841add81: crates/comm/tests/traffic_props.rs

crates/comm/tests/traffic_props.rs:
