/root/repo/target/debug/deps/repro-7c9a73c0d335d361.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7c9a73c0d335d361: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
