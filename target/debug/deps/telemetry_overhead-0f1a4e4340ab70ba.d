/root/repo/target/debug/deps/telemetry_overhead-0f1a4e4340ab70ba.d: crates/bench/benches/telemetry_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_overhead-0f1a4e4340ab70ba.rmeta: crates/bench/benches/telemetry_overhead.rs Cargo.toml

crates/bench/benches/telemetry_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
