/root/repo/target/debug/deps/repro-f347e60a8619fa4f.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-f347e60a8619fa4f.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
