/root/repo/target/debug/deps/bns_gcn_repro-ab24389b26d53d86.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbns_gcn_repro-ab24389b26d53d86.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
