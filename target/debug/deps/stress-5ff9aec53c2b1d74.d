/root/repo/target/debug/deps/stress-5ff9aec53c2b1d74.d: crates/comm/tests/stress.rs

/root/repo/target/debug/deps/stress-5ff9aec53c2b1d74: crates/comm/tests/stress.rs

crates/comm/tests/stress.rs:
