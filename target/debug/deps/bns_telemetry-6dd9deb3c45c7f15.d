/root/repo/target/debug/deps/bns_telemetry-6dd9deb3c45c7f15.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/bns_telemetry-6dd9deb3c45c7f15: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
