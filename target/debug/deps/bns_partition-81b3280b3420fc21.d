/root/repo/target/debug/deps/bns_partition-81b3280b3420fc21.d: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

/root/repo/target/debug/deps/libbns_partition-81b3280b3420fc21.rlib: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

/root/repo/target/debug/deps/libbns_partition-81b3280b3420fc21.rmeta: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

crates/partition/src/lib.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel.rs:
crates/partition/src/partitioners.rs:
crates/partition/src/partitioning.rs:
