/root/repo/target/debug/deps/proptests-3ac764033c09d244.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-3ac764033c09d244: tests/proptests.rs

tests/proptests.rs:
