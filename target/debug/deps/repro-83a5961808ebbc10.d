/root/repo/target/debug/deps/repro-83a5961808ebbc10.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-83a5961808ebbc10: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
