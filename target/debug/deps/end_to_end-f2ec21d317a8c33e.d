/root/repo/target/debug/deps/end_to_end-f2ec21d317a8c33e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f2ec21d317a8c33e: tests/end_to_end.rs

tests/end_to_end.rs:
