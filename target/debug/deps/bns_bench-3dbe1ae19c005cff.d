/root/repo/target/debug/deps/bns_bench-3dbe1ae19c005cff.d: crates/bench/src/lib.rs crates/bench/src/exp_ablation.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_edge.rs crates/bench/src/exp_gat.rs crates/bench/src/exp_memory.rs crates/bench/src/exp_partition.rs crates/bench/src/exp_sampling.rs crates/bench/src/exp_throughput.rs crates/bench/src/exp_variance.rs

/root/repo/target/debug/deps/bns_bench-3dbe1ae19c005cff: crates/bench/src/lib.rs crates/bench/src/exp_ablation.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_edge.rs crates/bench/src/exp_gat.rs crates/bench/src/exp_memory.rs crates/bench/src/exp_partition.rs crates/bench/src/exp_sampling.rs crates/bench/src/exp_throughput.rs crates/bench/src/exp_variance.rs

crates/bench/src/lib.rs:
crates/bench/src/exp_ablation.rs:
crates/bench/src/exp_accuracy.rs:
crates/bench/src/exp_edge.rs:
crates/bench/src/exp_gat.rs:
crates/bench/src/exp_memory.rs:
crates/bench/src/exp_partition.rs:
crates/bench/src/exp_sampling.rs:
crates/bench/src/exp_throughput.rs:
crates/bench/src/exp_variance.rs:
