/root/repo/target/debug/deps/proptests-17e5e9ede5a5c004.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-17e5e9ede5a5c004: tests/proptests.rs

tests/proptests.rs:
