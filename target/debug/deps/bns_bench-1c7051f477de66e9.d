/root/repo/target/debug/deps/bns_bench-1c7051f477de66e9.d: crates/bench/src/lib.rs crates/bench/src/exp_ablation.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_edge.rs crates/bench/src/exp_gat.rs crates/bench/src/exp_memory.rs crates/bench/src/exp_partition.rs crates/bench/src/exp_sampling.rs crates/bench/src/exp_throughput.rs crates/bench/src/exp_variance.rs Cargo.toml

/root/repo/target/debug/deps/libbns_bench-1c7051f477de66e9.rmeta: crates/bench/src/lib.rs crates/bench/src/exp_ablation.rs crates/bench/src/exp_accuracy.rs crates/bench/src/exp_edge.rs crates/bench/src/exp_gat.rs crates/bench/src/exp_memory.rs crates/bench/src/exp_partition.rs crates/bench/src/exp_sampling.rs crates/bench/src/exp_throughput.rs crates/bench/src/exp_variance.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exp_ablation.rs:
crates/bench/src/exp_accuracy.rs:
crates/bench/src/exp_edge.rs:
crates/bench/src/exp_gat.rs:
crates/bench/src/exp_memory.rs:
crates/bench/src/exp_partition.rs:
crates/bench/src/exp_sampling.rs:
crates/bench/src/exp_throughput.rs:
crates/bench/src/exp_variance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
