/root/repo/target/debug/deps/gradients-b1e41b11575f7229.d: crates/nn/tests/gradients.rs Cargo.toml

/root/repo/target/debug/deps/libgradients-b1e41b11575f7229.rmeta: crates/nn/tests/gradients.rs Cargo.toml

crates/nn/tests/gradients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
