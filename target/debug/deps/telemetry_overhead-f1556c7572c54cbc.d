/root/repo/target/debug/deps/telemetry_overhead-f1556c7572c54cbc.d: crates/bench/benches/telemetry_overhead.rs

/root/repo/target/debug/deps/telemetry_overhead-f1556c7572c54cbc: crates/bench/benches/telemetry_overhead.rs

crates/bench/benches/telemetry_overhead.rs:
