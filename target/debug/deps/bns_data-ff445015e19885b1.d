/root/repo/target/debug/deps/bns_data-ff445015e19885b1.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

/root/repo/target/debug/deps/libbns_data-ff445015e19885b1.rlib: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

/root/repo/target/debug/deps/libbns_data-ff445015e19885b1.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/spec.rs:
