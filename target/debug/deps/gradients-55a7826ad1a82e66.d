/root/repo/target/debug/deps/gradients-55a7826ad1a82e66.d: crates/nn/tests/gradients.rs

/root/repo/target/debug/deps/gradients-55a7826ad1a82e66: crates/nn/tests/gradients.rs

crates/nn/tests/gradients.rs:
