/root/repo/target/debug/deps/bns_comm-1083f962f165b61b.d: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/debug/deps/bns_comm-1083f962f165b61b: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

crates/comm/src/lib.rs:
crates/comm/src/cost.rs:
crates/comm/src/rank.rs:
crates/comm/src/traffic.rs:
