/root/repo/target/debug/deps/telemetry_spans-9c7c398b62cc4ee9.d: crates/core/tests/telemetry_spans.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_spans-9c7c398b62cc4ee9.rmeta: crates/core/tests/telemetry_spans.rs Cargo.toml

crates/core/tests/telemetry_spans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
