/root/repo/target/debug/deps/datasets-9af04e786154cebd.d: crates/data/tests/datasets.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets-9af04e786154cebd.rmeta: crates/data/tests/datasets.rs Cargo.toml

crates/data/tests/datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
