/root/repo/target/debug/deps/bns_gcn_repro-902b0b99c3e0dbc1.d: src/lib.rs

/root/repo/target/debug/deps/bns_gcn_repro-902b0b99c3e0dbc1: src/lib.rs

src/lib.rs:
