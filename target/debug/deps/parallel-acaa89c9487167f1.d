/root/repo/target/debug/deps/parallel-acaa89c9487167f1.d: crates/tensor/tests/parallel.rs

/root/repo/target/debug/deps/parallel-acaa89c9487167f1: crates/tensor/tests/parallel.rs

crates/tensor/tests/parallel.rs:
