/root/repo/target/debug/deps/bns_comm-3e4a0cfa0506340b.d: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/debug/deps/libbns_comm-3e4a0cfa0506340b.rlib: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/debug/deps/libbns_comm-3e4a0cfa0506340b.rmeta: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

crates/comm/src/lib.rs:
crates/comm/src/cost.rs:
crates/comm/src/rank.rs:
crates/comm/src/traffic.rs:
