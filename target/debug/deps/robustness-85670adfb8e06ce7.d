/root/repo/target/debug/deps/robustness-85670adfb8e06ce7.d: crates/core/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-85670adfb8e06ce7.rmeta: crates/core/tests/robustness.rs Cargo.toml

crates/core/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
