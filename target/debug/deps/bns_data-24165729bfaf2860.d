/root/repo/target/debug/deps/bns_data-24165729bfaf2860.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

/root/repo/target/debug/deps/bns_data-24165729bfaf2860: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/spec.rs:
