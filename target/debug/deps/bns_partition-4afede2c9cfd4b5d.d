/root/repo/target/debug/deps/bns_partition-4afede2c9cfd4b5d.d: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs Cargo.toml

/root/repo/target/debug/deps/libbns_partition-4afede2c9cfd4b5d.rmeta: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel.rs:
crates/partition/src/partitioners.rs:
crates/partition/src/partitioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
