/root/repo/target/debug/deps/stress-1551a7e9907b4265.d: crates/comm/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-1551a7e9907b4265.rmeta: crates/comm/tests/stress.rs Cargo.toml

crates/comm/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
