/root/repo/target/debug/deps/bns_gcn-eaee99c50337b629.d: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

/root/repo/target/debug/deps/bns_gcn-eaee99c50337b629: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs

crates/core/src/lib.rs:
crates/core/src/costsim.rs:
crates/core/src/engine.rs:
crates/core/src/fullgraph.rs:
crates/core/src/memory.rs:
crates/core/src/minibatch.rs:
crates/core/src/plan.rs:
crates/core/src/sampling.rs:
crates/core/src/variance.rs:
