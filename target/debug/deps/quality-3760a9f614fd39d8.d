/root/repo/target/debug/deps/quality-3760a9f614fd39d8.d: crates/partition/tests/quality.rs

/root/repo/target/debug/deps/quality-3760a9f614fd39d8: crates/partition/tests/quality.rs

crates/partition/tests/quality.rs:
