/root/repo/target/debug/deps/robustness-d27e0b8447dd1d4e.d: crates/core/tests/robustness.rs

/root/repo/target/debug/deps/robustness-d27e0b8447dd1d4e: crates/core/tests/robustness.rs

crates/core/tests/robustness.rs:
