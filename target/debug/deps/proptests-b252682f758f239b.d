/root/repo/target/debug/deps/proptests-b252682f758f239b.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-b252682f758f239b.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
