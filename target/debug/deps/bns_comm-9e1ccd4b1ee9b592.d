/root/repo/target/debug/deps/bns_comm-9e1ccd4b1ee9b592.d: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/debug/deps/bns_comm-9e1ccd4b1ee9b592: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

crates/comm/src/lib.rs:
crates/comm/src/cost.rs:
crates/comm/src/rank.rs:
crates/comm/src/traffic.rs:
