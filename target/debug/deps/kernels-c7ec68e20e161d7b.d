/root/repo/target/debug/deps/kernels-c7ec68e20e161d7b.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-c7ec68e20e161d7b: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
