/root/repo/target/debug/deps/criterion-e236384915fa55d7.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-e236384915fa55d7.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
