/root/repo/target/debug/deps/bns_tensor-d38c7cb206292cfa.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libbns_tensor-d38c7cb206292cfa.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libbns_tensor-d38c7cb206292cfa.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
