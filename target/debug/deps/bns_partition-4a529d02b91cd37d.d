/root/repo/target/debug/deps/bns_partition-4a529d02b91cd37d.d: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

/root/repo/target/debug/deps/bns_partition-4a529d02b91cd37d: crates/partition/src/lib.rs crates/partition/src/metrics.rs crates/partition/src/multilevel.rs crates/partition/src/partitioners.rs crates/partition/src/partitioning.rs

crates/partition/src/lib.rs:
crates/partition/src/metrics.rs:
crates/partition/src/multilevel.rs:
crates/partition/src/partitioners.rs:
crates/partition/src/partitioning.rs:
