/root/repo/target/debug/deps/bns_graph-61a494b44efbbf0e.d: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/bns_graph-61a494b44efbbf0e: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/algo.rs:
crates/graph/src/csr.rs:
crates/graph/src/generators.rs:
crates/graph/src/sampler.rs:
crates/graph/src/stats.rs:
