/root/repo/target/debug/deps/bns_telemetry-8a721fbbb3ab561f.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libbns_telemetry-8a721fbbb3ab561f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
