/root/repo/target/debug/deps/datasets-3b2ca9124a8d95ea.d: crates/data/tests/datasets.rs

/root/repo/target/debug/deps/datasets-3b2ca9124a8d95ea: crates/data/tests/datasets.rs

crates/data/tests/datasets.rs:
