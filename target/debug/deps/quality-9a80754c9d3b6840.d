/root/repo/target/debug/deps/quality-9a80754c9d3b6840.d: crates/partition/tests/quality.rs Cargo.toml

/root/repo/target/debug/deps/libquality-9a80754c9d3b6840.rmeta: crates/partition/tests/quality.rs Cargo.toml

crates/partition/tests/quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
