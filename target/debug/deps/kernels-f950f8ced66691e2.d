/root/repo/target/debug/deps/kernels-f950f8ced66691e2.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-f950f8ced66691e2.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
