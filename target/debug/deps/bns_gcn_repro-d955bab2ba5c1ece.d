/root/repo/target/debug/deps/bns_gcn_repro-d955bab2ba5c1ece.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbns_gcn_repro-d955bab2ba5c1ece.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
