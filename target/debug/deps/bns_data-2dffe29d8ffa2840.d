/root/repo/target/debug/deps/bns_data-2dffe29d8ffa2840.d: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libbns_data-2dffe29d8ffa2840.rmeta: crates/data/src/lib.rs crates/data/src/dataset.rs crates/data/src/spec.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/dataset.rs:
crates/data/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
