/root/repo/target/debug/deps/telemetry_spans-9779ce8dfdb5b55e.d: crates/core/tests/telemetry_spans.rs

/root/repo/target/debug/deps/telemetry_spans-9779ce8dfdb5b55e: crates/core/tests/telemetry_spans.rs

crates/core/tests/telemetry_spans.rs:
