/root/repo/target/debug/deps/parallel-12bbaf0a761c1827.d: crates/tensor/tests/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-12bbaf0a761c1827.rmeta: crates/tensor/tests/parallel.rs Cargo.toml

crates/tensor/tests/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
