/root/repo/target/debug/deps/bns_nn-e01d8eb835e9d8c8.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/aggregate.rs crates/nn/src/gradcheck.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/gat.rs crates/nn/src/layers/gcn.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/sage.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/optim.rs Cargo.toml

/root/repo/target/debug/deps/libbns_nn-e01d8eb835e9d8c8.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/aggregate.rs crates/nn/src/gradcheck.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/gat.rs crates/nn/src/layers/gcn.rs crates/nn/src/layers/linear.rs crates/nn/src/layers/sage.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/models.rs crates/nn/src/optim.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/aggregate.rs:
crates/nn/src/gradcheck.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/gat.rs:
crates/nn/src/layers/gcn.rs:
crates/nn/src/layers/linear.rs:
crates/nn/src/layers/sage.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/models.rs:
crates/nn/src/optim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
