/root/repo/target/debug/deps/parallel_kernels-e800744bc49b3f8a.d: crates/nn/tests/parallel_kernels.rs

/root/repo/target/debug/deps/parallel_kernels-e800744bc49b3f8a: crates/nn/tests/parallel_kernels.rs

crates/nn/tests/parallel_kernels.rs:
