/root/repo/target/debug/deps/bns_comm-9caa6654e60a1580.d: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libbns_comm-9caa6654e60a1580.rmeta: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/cost.rs:
crates/comm/src/rank.rs:
crates/comm/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
