/root/repo/target/debug/deps/bns_comm-a3c6f99ff7e6d5e4.d: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/debug/deps/libbns_comm-a3c6f99ff7e6d5e4.rlib: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

/root/repo/target/debug/deps/libbns_comm-a3c6f99ff7e6d5e4.rmeta: crates/comm/src/lib.rs crates/comm/src/cost.rs crates/comm/src/rank.rs crates/comm/src/traffic.rs

crates/comm/src/lib.rs:
crates/comm/src/cost.rs:
crates/comm/src/rank.rs:
crates/comm/src/traffic.rs:
