/root/repo/target/debug/deps/traffic_props-747dfb63a0c66eec.d: crates/comm/tests/traffic_props.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic_props-747dfb63a0c66eec.rmeta: crates/comm/tests/traffic_props.rs Cargo.toml

crates/comm/tests/traffic_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
