/root/repo/target/debug/deps/bns_tensor-e98ffb017778561c.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/bns_tensor-e98ffb017778561c: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
