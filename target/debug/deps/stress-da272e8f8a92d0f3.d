/root/repo/target/debug/deps/stress-da272e8f8a92d0f3.d: crates/comm/tests/stress.rs

/root/repo/target/debug/deps/stress-da272e8f8a92d0f3: crates/comm/tests/stress.rs

crates/comm/tests/stress.rs:
