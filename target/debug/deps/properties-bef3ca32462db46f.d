/root/repo/target/debug/deps/properties-bef3ca32462db46f.d: crates/tensor/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bef3ca32462db46f.rmeta: crates/tensor/tests/properties.rs Cargo.toml

crates/tensor/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
