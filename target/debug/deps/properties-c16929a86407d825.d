/root/repo/target/debug/deps/properties-c16929a86407d825.d: crates/tensor/tests/properties.rs

/root/repo/target/debug/deps/properties-c16929a86407d825: crates/tensor/tests/properties.rs

crates/tensor/tests/properties.rs:
