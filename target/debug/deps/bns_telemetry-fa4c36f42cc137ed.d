/root/repo/target/debug/deps/bns_telemetry-fa4c36f42cc137ed.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libbns_telemetry-fa4c36f42cc137ed.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libbns_telemetry-fa4c36f42cc137ed.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
