/root/repo/target/debug/deps/bns_gcn_repro-dfd0e3bee3036b13.d: src/lib.rs

/root/repo/target/debug/deps/bns_gcn_repro-dfd0e3bee3036b13: src/lib.rs

src/lib.rs:
