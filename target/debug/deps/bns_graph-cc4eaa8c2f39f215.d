/root/repo/target/debug/deps/bns_graph-cc4eaa8c2f39f215.d: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libbns_graph-cc4eaa8c2f39f215.rmeta: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/algo.rs:
crates/graph/src/csr.rs:
crates/graph/src/generators.rs:
crates/graph/src/sampler.rs:
crates/graph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
