/root/repo/target/debug/deps/end_to_end-76f9439d6ce697df.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-76f9439d6ce697df: tests/end_to_end.rs

tests/end_to_end.rs:
