/root/repo/target/debug/deps/bns_tensor-7e3e7f09bae700d7.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libbns_tensor-7e3e7f09bae700d7.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
