/root/repo/target/debug/deps/repro-e022ae049cffce61.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-e022ae049cffce61.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
