/root/repo/target/debug/deps/bns_gcn_repro-de38761261ba5f1a.d: src/lib.rs

/root/repo/target/debug/deps/libbns_gcn_repro-de38761261ba5f1a.rlib: src/lib.rs

/root/repo/target/debug/deps/libbns_gcn_repro-de38761261ba5f1a.rmeta: src/lib.rs

src/lib.rs:
