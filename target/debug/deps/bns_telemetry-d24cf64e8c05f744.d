/root/repo/target/debug/deps/bns_telemetry-d24cf64e8c05f744.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libbns_telemetry-d24cf64e8c05f744.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
