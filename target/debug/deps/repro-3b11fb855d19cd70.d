/root/repo/target/debug/deps/repro-3b11fb855d19cd70.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-3b11fb855d19cd70: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
