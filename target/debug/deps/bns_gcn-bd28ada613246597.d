/root/repo/target/debug/deps/bns_gcn-bd28ada613246597.d: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs Cargo.toml

/root/repo/target/debug/deps/libbns_gcn-bd28ada613246597.rmeta: crates/core/src/lib.rs crates/core/src/costsim.rs crates/core/src/engine.rs crates/core/src/fullgraph.rs crates/core/src/memory.rs crates/core/src/minibatch.rs crates/core/src/plan.rs crates/core/src/sampling.rs crates/core/src/variance.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/costsim.rs:
crates/core/src/engine.rs:
crates/core/src/fullgraph.rs:
crates/core/src/memory.rs:
crates/core/src/minibatch.rs:
crates/core/src/plan.rs:
crates/core/src/sampling.rs:
crates/core/src/variance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
