/root/repo/target/debug/deps/parallel_kernels-3734582c326c2106.d: crates/nn/tests/parallel_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_kernels-3734582c326c2106.rmeta: crates/nn/tests/parallel_kernels.rs Cargo.toml

crates/nn/tests/parallel_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
