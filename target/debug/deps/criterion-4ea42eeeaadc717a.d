/root/repo/target/debug/deps/criterion-4ea42eeeaadc717a.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-4ea42eeeaadc717a: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
