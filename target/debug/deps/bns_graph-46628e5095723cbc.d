/root/repo/target/debug/deps/bns_graph-46628e5095723cbc.d: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libbns_graph-46628e5095723cbc.rlib: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

/root/repo/target/debug/deps/libbns_graph-46628e5095723cbc.rmeta: crates/graph/src/lib.rs crates/graph/src/algo.rs crates/graph/src/csr.rs crates/graph/src/generators.rs crates/graph/src/sampler.rs crates/graph/src/stats.rs

crates/graph/src/lib.rs:
crates/graph/src/algo.rs:
crates/graph/src/csr.rs:
crates/graph/src/generators.rs:
crates/graph/src/sampler.rs:
crates/graph/src/stats.rs:
