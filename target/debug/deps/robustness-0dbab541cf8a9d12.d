/root/repo/target/debug/deps/robustness-0dbab541cf8a9d12.d: crates/core/tests/robustness.rs

/root/repo/target/debug/deps/robustness-0dbab541cf8a9d12: crates/core/tests/robustness.rs

crates/core/tests/robustness.rs:
