/root/repo/target/debug/deps/criterion-bc99710f216da0c0.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-bc99710f216da0c0.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
