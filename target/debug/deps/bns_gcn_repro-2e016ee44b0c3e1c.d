/root/repo/target/debug/deps/bns_gcn_repro-2e016ee44b0c3e1c.d: src/lib.rs

/root/repo/target/debug/deps/libbns_gcn_repro-2e016ee44b0c3e1c.rlib: src/lib.rs

/root/repo/target/debug/deps/libbns_gcn_repro-2e016ee44b0c3e1c.rmeta: src/lib.rs

src/lib.rs:
