/root/repo/target/debug/deps/criterion-1a0e194d740a38e0.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1a0e194d740a38e0.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1a0e194d740a38e0.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
