//! Scaling study: how communication volume, memory and simulated epoch
//! time change with the number of partitions and the sampling rate —
//! the core systems story of the paper (its Figures 4–6).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use bns_comm::CostModel;
use bns_data::SyntheticSpec;
use bns_gcn::engine::{train_with_plan, ModelArch, TrainConfig};
use bns_gcn::plan::PartitionPlan;
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

fn main() {
    let ds = Arc::new(SyntheticSpec::products_sim().with_nodes(8_000).generate(7));
    let cost = CostModel::pcie3();
    // Project measured bytes/FLOPs to the real ogbn-products size so
    // the cost model operates in the paper's bandwidth-bound regime.
    let wscale = 2_400_000.0 / ds.num_nodes() as f64;

    println!("k   p      boundary   comm MB/ep   peak mem   sim epoch  meas epoch");
    println!("--  -----  ---------  -----------  ---------  ---------  ----------");
    for k in [2usize, 4, 8] {
        let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
        let plan = Arc::new(PartitionPlan::build(&ds, &part));
        for p in [1.0, 0.1, 0.01] {
            let cfg = TrainConfig {
                arch: ModelArch::Sage,
                hidden: vec![64, 64],
                dropout: 0.0,
                lr: 0.01,
                epochs: 4,
                sampling: BoundarySampling::Bns { p },
                eval_every: 0,
                seed: 0,
                clip_norm: None,
                pipeline: false,
                workers: None,
                wire_precision: None,
            };
            let run = train_with_plan(&plan, &cfg);
            let selected: usize = run
                .epochs
                .iter()
                .map(|e| e.selected_boundary)
                .sum::<usize>()
                / run.epochs.len();
            let sim = run.avg_sim_epoch_scaled(&cost, wscale);
            println!(
                "{k:<3} {p:<6} {selected:<10} {:<12.2} {:>7.1}MB  {:<9.2}  {:.2}ms",
                run.epoch_comm_mb(),
                *run.peak_mem_per_rank.iter().max().unwrap() as f64 / 1e6,
                sim.total() * 1e3,
                run.avg_epoch_s() * 1e3,
            );
        }
    }
    println!(
        "\nTakeaways (matching the paper): boundary sets grow with k; \
         p=0.1 cuts comm ~10x and memory grows less; the simulated epoch \
         time of sampled training stays nearly flat as k grows."
    );
}
