//! Sampling showdown: BNS-GCN vs the classic sampling-based training
//! methods (neighbor, layer-wise and subgraph sampling) on the same
//! dataset and model family — the comparison behind the paper's
//! Tables 4, 5 and 11.
//!
//! ```text
//! cargo run --release --example sampling_showdown
//! ```

use bns_data::SyntheticSpec;
use bns_gcn::engine::{train, ModelArch, TrainConfig};
use bns_gcn::minibatch::{train_minibatch, MiniBatchConfig, MiniBatchMethod};
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{MetisLikePartitioner, Partitioner};
use std::sync::Arc;

fn main() {
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(4_000).generate(11));
    println!(
        "reddit-sim: {} nodes / {} edges / {} classes\n",
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes
    );

    let cfg = MiniBatchConfig {
        hidden: vec![64, 64],
        dropout: 0.0,
        lr: 0.01,
        epochs: 10,
        batch_size: 256,
        seed: 3,
    };
    println!("method             test acc   epoch time   sampling overhead");
    println!("-----------------  ---------  -----------  -----------------");
    for method in [
        MiniBatchMethod::NeighborSampling { fanout: 10 },
        MiniBatchMethod::FastGcn { support: 400 },
        MiniBatchMethod::Ladies { support: 400 },
        MiniBatchMethod::ClusterGcn {
            clusters: 12,
            per_batch: 3,
        },
        MiniBatchMethod::GraphSaintWalk {
            roots: 120,
            length: 4,
        },
        MiniBatchMethod::VrGcn { batch: 256 },
    ] {
        let run = train_minibatch(&ds, method, &cfg);
        println!(
            "{:<18} {:<10.4} {:<12.3} {:.1}%",
            run.method,
            run.final_test,
            run.avg_epoch_s,
            100.0 * run.sampling_frac
        );
    }

    // BNS-GCN: distributed over 4 ranks with p = 0.1.
    let part = MetisLikePartitioner::default().partition(&ds.graph, 4, 0);
    let run = train(
        &ds,
        &part,
        &TrainConfig {
            arch: ModelArch::Sage,
            hidden: vec![64, 64],
            dropout: 0.0,
            lr: 0.01,
            epochs: 10,
            sampling: BoundarySampling::Bns { p: 0.1 },
            eval_every: 0,
            seed: 3,
            clip_norm: None,
            pipeline: false,
            workers: None,
            wire_precision: None,
        },
    );
    let sample_s: f64 = run.epochs.iter().map(|e| e.sample_s).sum();
    let total_s: f64 = run.epochs.iter().map(|e| e.total_s()).sum();
    println!(
        "{:<18} {:<10.4} {:<12.3} {:.1}%",
        "BNS-GCN(p=0.1) x4",
        run.final_test,
        run.avg_epoch_s(),
        100.0 * sample_s / total_s
    );
    println!(
        "\nBNS samples only the boundary region, so its sampling overhead \
         stays near zero while mini-batch samplers pay per batch."
    );
}
