//! Partition quality: why the partitioner objective matters for
//! distributed GCN training. Compares random / hash / BFS / METIS-like
//! (edge-cut and comm-volume objectives) on the metrics the paper
//! identifies as the real cost drivers — boundary *nodes*, not edges.
//!
//! ```text
//! cargo run --release --example partition_quality
//! ```

use bns_data::SyntheticSpec;
use bns_partition::{
    metrics, BfsPartitioner, HashPartitioner, MetisLikePartitioner, Objective, Partitioner,
    RandomPartitioner,
};

fn main() {
    let ds = SyntheticSpec::reddit_sim().with_nodes(6_000).generate(5);
    let k = 8;
    println!(
        "reddit-sim: {} nodes / {} edges, k = {k}\n",
        ds.graph.num_nodes(),
        ds.graph.num_edges()
    );
    println!("partitioner        edge cut   comm volume   max B/I ratio   imbalance");
    println!("-----------------  ---------  ------------  --------------  ---------");
    let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("random", Box::new(RandomPartitioner)),
        ("hash", Box::new(HashPartitioner)),
        ("bfs", Box::new(BfsPartitioner)),
        (
            "metis-like(cut)",
            Box::new(MetisLikePartitioner {
                objective: Objective::EdgeCut,
                ..Default::default()
            }),
        ),
        ("metis-like(vol)", Box::new(MetisLikePartitioner::default())),
    ];
    for (name, p) in partitioners {
        let part = p.partition(&ds.graph, k, 0);
        let r = metrics::PartitionReport::of(&ds.graph, &part);
        let max_ratio = r.ratio.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<18} {:<10} {:<13} {:<15.2} {:.3}",
            r.edge_cut, r.comm_volume, max_ratio, r.imbalance
        );
    }
    println!(
        "\nThe comm-volume objective minimizes boundary *nodes* (the \
         paper's Eq. 3 cost), which is what BNS-GCN's communication and \
         memory scale with."
    );
}
