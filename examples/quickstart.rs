//! Quickstart: partition a graph, train BNS-GCN with boundary-node
//! sampling, and compare against unsampled full-graph training.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bns_data::SyntheticSpec;
use bns_gcn::engine::{train, ModelArch, TrainConfig};
use bns_gcn::sampling::BoundarySampling;
use bns_partition::{metrics, MetisLikePartitioner, Partitioner};
use std::sync::Arc;

fn main() {
    // 1. A Reddit-like synthetic dataset: power-law degrees, planted
    //    communities, label-correlated features.
    let ds = Arc::new(SyntheticSpec::reddit_sim().with_nodes(4_000).generate(42));
    println!(
        "dataset: {} nodes, {} edges, {} classes, {} train nodes",
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes,
        ds.train.len()
    );

    // 2. Partition with the METIS-like multilevel partitioner, set to
    //    minimize communication volume (= total boundary nodes).
    let k = 4;
    let part = MetisLikePartitioner::default().partition(&ds.graph, k, 0);
    let report = metrics::PartitionReport::of(&ds.graph, &part);
    println!(
        "partitioned into {k}: inner {:?}, boundary {:?} (comm volume {})",
        report.inner, report.boundary, report.comm_volume
    );

    // 3. Train with boundary-node sampling at p = 0.1: each epoch every
    //    partition keeps a random 10% of its boundary set and rescales
    //    received features by 1/p.
    let cfg = TrainConfig {
        arch: ModelArch::Sage,
        hidden: vec![64, 64],
        dropout: 0.3,
        lr: 0.01,
        epochs: 40,
        sampling: BoundarySampling::Bns { p: 0.1 },
        eval_every: 10,
        seed: 0,
        clip_norm: Some(1.0),
        pipeline: false,
        workers: None,
        wire_precision: None,
    };
    let sampled = train(&ds, &part, &cfg);

    // 4. Compare with unsampled (p = 1) vanilla partition parallelism.
    let full = train(
        &ds,
        &part,
        &TrainConfig {
            sampling: BoundarySampling::Bns { p: 1.0 },
            ..cfg
        },
    );

    println!("\n           |   p=0.1 |   p=1.0");
    println!(
        "test acc   | {:7.4} | {:7.4}",
        sampled.final_test, full.final_test
    );
    println!(
        "comm MB/ep | {:7.2} | {:7.2}",
        sampled.epoch_comm_mb(),
        full.epoch_comm_mb()
    );
    println!(
        "peak mem   | {:6.1}M | {:6.1}M",
        *sampled.peak_mem_per_rank.iter().max().unwrap() as f64 / 1e6,
        *full.peak_mem_per_rank.iter().max().unwrap() as f64 / 1e6
    );
    println!(
        "\nBNS-GCN at p=0.1 moved {:.0}% of the boundary bytes of p=1 \
         while matching its accuracy.",
        100.0 * sampled.epoch_comm_mb() / full.epoch_comm_mb()
    );
}
